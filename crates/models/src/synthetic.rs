//! Synthetic weight generation calibrated to the paper's redundancy
//! statistics.
//!
//! Real SmoothQuant-quantized OPT weights are unavailable offline. What the
//! latency model needs from weights is exactly their *chunk redundancy
//! structure*: how many unique chunks a matrix decomposes into (Fig. 4a
//! reports reduction ratios of 10²–10³) and how chunk occurrences are
//! distributed (Fig. 10b shows heavy-tailed frequencies spread across the ID
//! range; quantized weights also exhibit *runs* of repeated chunks in
//! near-zero regions, which is what gives packet-specific precision its
//! advantage in Fig. 4b).
//!
//! [`generate_decomposition`] synthesizes a decomposition directly:
//!
//! * a pool of `U` distinct chunks ([`RedundancyProfile::unique_chunks`]),
//! * chunk frequencies following a Zipf law
//!   ([`RedundancyProfile::zipf_exponent`]),
//! * geometric run lengths ([`RedundancyProfile::mean_run_len`]),
//! * IDs assigned in *random* order relative to frequency rank (matching the
//!   paper's observation that frequent chunks land on arbitrary — often
//!   large — IDs before re-indexing, Fig. 10b),
//! * a coverage prefix enumerating every pool chunk once, so a materialized
//!   matrix decomposes to exactly `U` unique chunks.
//!
//! [`profile_for`] provides the per-matrix calibration; its anchor point is
//! the paper's decoder-1 MLP1 matrix of OPT-125M with exactly 1272 unique
//! chunks (Fig. 10a).

use crate::config::{MatrixKind, TransformerConfig};
use crate::error::ModelError;
use meadow_packing::chunk::{reconstruct, EncodedMatrix, UniqueMatrix};
use meadow_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Redundancy statistics for one weight matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RedundancyProfile {
    /// Number of unique chunks the matrix decomposes into.
    pub unique_chunks: usize,
    /// Zipf exponent of the chunk-frequency distribution (higher = more
    /// skewed toward a few dominant chunks).
    pub zipf_exponent: f64,
    /// Mean length of runs of a repeated chunk (geometric distribution).
    pub mean_run_len: f64,
}

impl RedundancyProfile {
    /// A flat, low-redundancy profile useful in tests.
    pub fn flat(unique_chunks: usize) -> Self {
        Self { unique_chunks, zipf_exponent: 1.0001, mean_run_len: 1.0 }
    }
}

/// Calibrated redundancy profile for a given matrix of a model.
///
/// Anchors:
/// * OPT-125M decoder-1 MLP1 → exactly 1272 unique chunks (Fig. 10a).
/// * Reduction ratios decay with depth, spanning the 10²–10³ band of
///   Fig. 4a.
/// * Attention matrices are less redundant and less skewed than MLP
///   matrices, which is what keeps the whole-model packing gain near the
///   paper's ≈1.5× decode improvement while MLP1 alone reaches ≈2.6×.
pub fn profile_for(
    config: &TransformerConfig,
    kind: MatrixKind,
    layer: usize,
) -> RedundancyProfile {
    let (rows, cols) = config.matrix_dims(kind);
    let n_chunks = (rows * cols / 2).max(1) as f64;
    let depth = layer as f64 / config.layers.max(1) as f64;
    // Skew and run structure also decay with depth: early layers carry the
    // near-zero plateaus that pack well, deep layers look closer to noise.
    let (base_ratio, n_ref, zipf, run) = if kind.is_attention() {
        (120.0, 294_912.0, 1.01, 2.0)
    } else {
        (927.3, 1_179_648.0, 1.18 - 0.13 * depth, 16.0 - 10.0 * depth)
    };
    // Redundancy decays with depth: deeper layers have more diverse weights.
    let ratio = base_ratio / (1.0 + 4.0 * depth);
    // Unique-chunk counts grow sublinearly with matrix size (the value
    // distribution of a larger quantized matrix repeats itself), anchored at
    // the OPT-125M shapes.
    let unique_ref = n_ref / ratio;
    let unique = (unique_ref * (n_chunks / n_ref).powf(0.85)).round() as usize;
    RedundancyProfile {
        unique_chunks: unique.clamp(2, 60_000).min(n_chunks as usize),
        zipf_exponent: zipf,
        mean_run_len: run.max(1.0),
    }
}

/// Deterministic seed for a matrix's generator, derived from the model name,
/// matrix kind and layer (FNV-1a over the identifying string).
pub fn matrix_seed(config: &TransformerConfig, kind: MatrixKind, layer: usize) -> u64 {
    let ident = format!("{}/{kind:?}/{layer}", config.name);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in ident.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Inverse-CDF Zipf sampler over ranks `0..n` with exponent `s`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] for `n == 0` or a non-finite or
    /// non-positive exponent.
    pub fn new(n: usize, s: f64) -> Result<Self, ModelError> {
        if n == 0 {
            return Err(ModelError::InvalidConfig { param: "zipf_n", reason: "zero ranks".into() });
        }
        if !s.is_finite() || s <= 0.0 {
            return Err(ModelError::InvalidConfig {
                param: "zipf_exponent",
                reason: format!("must be finite and positive, got {s}"),
            });
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Ok(Self { cdf })
    }

    /// Samples a rank in `0..n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Samples a geometric run length with the given mean (≥ 1).
fn sample_run_len<R: Rng>(rng: &mut R, mean: f64) -> usize {
    if mean <= 1.0 {
        return 1;
    }
    let p = 1.0 / mean;
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    1 + (u.ln() / (1.0 - p).ln()).floor() as usize
}

/// Builds a pool of `count` distinct chunks of `chunk_elems` INT8 values.
///
/// `count` is clamped to the size of the chunk space (`256^chunk_elems`):
/// single-byte chunks, for instance, admit at most 256 distinct values.
fn build_pool<R: Rng>(rng: &mut R, count: usize, chunk_elems: usize) -> Vec<Vec<i8>> {
    // 256^chunk_elems, saturating (space is effectively unbounded beyond
    // eight elements).
    let space = 256u128.checked_pow(chunk_elems.min(16) as u32).unwrap_or(u128::MAX);
    let count = (count as u128).min(space) as usize;
    if chunk_elems == 1 {
        // Enumerate-and-shuffle: rejection sampling would crawl as the pool
        // approaches the full 256-value space.
        let mut all: Vec<Vec<i8>> = (0..=255u8).map(|v| vec![v as i8]).collect();
        shuffle(&mut all, rng);
        all.truncate(count);
        all
    } else if chunk_elems == 2 {
        // Chunk space is 65536 u16 patterns: rejection-sample distinct
        // patterns (counts stay well below the space in practice).
        let mut picked = std::collections::HashSet::with_capacity(count);
        let mut pool = Vec::with_capacity(count);
        while pool.len() < count {
            let v: u16 = rng.gen();
            if picked.insert(v) {
                pool.push(vec![(v & 0xFF) as u8 as i8, (v >> 8) as u8 as i8]);
            }
        }
        pool
    } else {
        let mut picked = std::collections::HashSet::with_capacity(count);
        let mut pool = Vec::with_capacity(count);
        while pool.len() < count {
            let chunk: Vec<i8> = (0..chunk_elems).map(|_| rng.gen::<u8>() as i8).collect();
            if picked.insert(chunk.clone()) {
                pool.push(chunk);
            }
        }
        pool
    }
}

/// Generates a synthetic decomposition of a `rows × cols` INT8 matrix.
///
/// # Errors
///
/// Returns [`ModelError::InvalidConfig`] for a zero chunk size, a column
/// count not divisible by the chunk size, or a degenerate profile.
pub fn generate_decomposition(
    rows: usize,
    cols: usize,
    profile: RedundancyProfile,
    chunk_elems: usize,
    seed: u64,
) -> Result<(UniqueMatrix, EncodedMatrix), ModelError> {
    if chunk_elems == 0 {
        return Err(ModelError::InvalidConfig { param: "chunk_elems", reason: "zero".into() });
    }
    if !cols.is_multiple_of(chunk_elems) {
        return Err(ModelError::InvalidConfig {
            param: "cols",
            reason: format!("{cols} not divisible by chunk size {chunk_elems}"),
        });
    }
    let chunk_cols = cols / chunk_elems;
    let total = rows * chunk_cols;
    let mut rng = StdRng::seed_from_u64(seed);
    let u = profile.unique_chunks.clamp(1, total.max(1));
    if total == 0 {
        let unique = UniqueMatrix::from_chunks(Vec::new(), chunk_elems)?;
        let encoded = EncodedMatrix::from_ids(Vec::new(), rows, chunk_cols, chunk_elems)?;
        return Ok((unique, encoded));
    }
    let pool = build_pool(&mut rng, u, chunk_elems);
    let u = pool.len();
    // Random rank → ID permutation: decouples frequency from ID value.
    let mut rank_to_id: Vec<u32> = (0..u as u32).collect();
    shuffle(&mut rank_to_id, &mut rng);
    let zipf = ZipfSampler::new(u, profile.zipf_exponent)?;
    let mut ids = Vec::with_capacity(total);
    // Coverage prefix: every chunk appears at least once, in shuffled order.
    let mut prefix: Vec<u32> = (0..u as u32).collect();
    shuffle(&mut prefix, &mut rng);
    ids.extend(prefix.into_iter().take(total));
    // Run-structured Zipf body.
    while ids.len() < total {
        let rank = zipf.sample(&mut rng);
        let id = rank_to_id[rank];
        let run = sample_run_len(&mut rng, profile.mean_run_len).min(total - ids.len());
        ids.extend(std::iter::repeat_n(id, run));
    }
    let unique = UniqueMatrix::from_chunks(pool, chunk_elems)?;
    let encoded = EncodedMatrix::from_ids(ids, rows, chunk_cols, chunk_elems)?;
    Ok((unique, encoded))
}

/// Materializes the synthetic weight matrix itself (small configs / tests).
///
/// # Errors
///
/// Propagates generation errors.
pub fn generate_matrix(
    rows: usize,
    cols: usize,
    profile: RedundancyProfile,
    chunk_elems: usize,
    seed: u64,
) -> Result<Matrix<i8>, ModelError> {
    let (unique, encoded) = generate_decomposition(rows, cols, profile, chunk_elems, seed)?;
    Ok(reconstruct(&unique, &encoded)?)
}

fn shuffle<T, R: Rng>(xs: &mut [T], rng: &mut R) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use meadow_packing::chunk::reduction_ratio;

    #[test]
    fn anchor_point_mlp1_decoder1_has_1272_unique_chunks() {
        let c = presets::opt_125m();
        let p = profile_for(&c, MatrixKind::MlpUp, 0);
        assert_eq!(p.unique_chunks, 1272, "paper's Fig. 10a anchor");
    }

    #[test]
    fn reduction_ratios_span_the_paper_band() {
        // Fig. 4a: reduction ratios of order 10²–10³ across layers.
        for c in [presets::opt_125m(), presets::opt_1_3b()] {
            for layer in [0, c.layers / 2, c.layers - 1] {
                for kind in MatrixKind::all() {
                    let p = profile_for(&c, kind, layer);
                    let (rows, cols) = c.matrix_dims(kind);
                    let ratio = (rows * cols / 2) as f64 / p.unique_chunks as f64;
                    assert!(
                        (20.0..=1500.0).contains(&ratio),
                        "{} {kind:?} layer {layer}: ratio {ratio}",
                        c.name
                    );
                }
            }
        }
    }

    #[test]
    fn generated_decomposition_matches_profile() {
        let profile =
            RedundancyProfile { unique_chunks: 50, zipf_exponent: 1.2, mean_run_len: 8.0 };
        let (unique, encoded) = generate_decomposition(64, 64, profile, 2, 42).unwrap();
        assert_eq!(unique.len(), 50);
        assert_eq!(encoded.len(), 64 * 32);
        let r = reduction_ratio(&unique, &encoded);
        assert!((r - 2048.0 / 50.0).abs() < 1e-9);
        // Every ID in range.
        assert!(encoded.ids().iter().all(|&id| (id as usize) < 50));
        // Coverage: every chunk appears.
        let mut seen = vec![false; 50];
        for &id in encoded.ids() {
            seen[id as usize] = true;
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn generation_is_deterministic() {
        let profile =
            RedundancyProfile { unique_chunks: 20, zipf_exponent: 1.1, mean_run_len: 4.0 };
        let a = generate_matrix(16, 32, profile, 2, 7).unwrap();
        let b = generate_matrix(16, 32, profile, 2, 7).unwrap();
        assert_eq!(a, b);
        let c = generate_matrix(16, 32, profile, 2, 8).unwrap();
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn materialized_matrix_decomposes_to_the_same_unique_count() {
        let profile =
            RedundancyProfile { unique_chunks: 30, zipf_exponent: 1.3, mean_run_len: 6.0 };
        let w = generate_matrix(32, 32, profile, 2, 99).unwrap();
        let (unique, _) =
            meadow_packing::chunk::decompose(&w, meadow_packing::ChunkConfig { chunk_elems: 2 })
                .unwrap();
        assert_eq!(unique.len(), 30);
    }

    #[test]
    fn zipf_sampler_is_skewed() {
        let z = ZipfSampler::new(100, 1.3).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u32; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[50].max(1));
        assert!(ZipfSampler::new(0, 1.0).is_err());
        assert!(ZipfSampler::new(10, 0.0).is_err());
        assert!(ZipfSampler::new(10, f64::NAN).is_err());
    }

    #[test]
    fn run_lengths_have_requested_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let total: usize = (0..n).map(|_| sample_run_len(&mut rng, 8.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 8.0).abs() < 0.5, "mean run {mean}");
        assert_eq!(sample_run_len(&mut rng, 1.0), 1);
        assert_eq!(sample_run_len(&mut rng, 0.5), 1);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let p = RedundancyProfile::flat(4);
        assert!(generate_decomposition(4, 7, p, 2, 0).is_err());
        assert!(generate_decomposition(4, 8, p, 0, 0).is_err());
    }

    #[test]
    fn seeds_differ_across_matrices() {
        let c = presets::opt_125m();
        let a = matrix_seed(&c, MatrixKind::Query, 0);
        let b = matrix_seed(&c, MatrixKind::Query, 1);
        let d = matrix_seed(&c, MatrixKind::Key, 0);
        assert_ne!(a, b);
        assert_ne!(a, d);
    }

    #[test]
    fn empty_matrix_generation() {
        let p = RedundancyProfile::flat(4);
        let (unique, encoded) = generate_decomposition(0, 0, p, 2, 0).unwrap();
        assert!(unique.is_empty());
        assert!(encoded.is_empty());
    }
}
