//! Latency-model invariants that must hold for *any* configuration: these
//! pin down the physics of the model rather than paper-specific numbers.

use meadow::core::baselines::Baseline;
use meadow::core::{EngineConfig, MeadowEngine};
use meadow::dataflow::ExecutionPlan;
use meadow::models::presets;
use meadow::sim::TrafficClass;

#[test]
fn latency_is_monotone_in_bandwidth() {
    let model = presets::tiny_decoder();
    let mut prev = f64::INFINITY;
    for bw in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
        let engine = MeadowEngine::new(EngineConfig::gemm_baseline(model.clone(), bw)).unwrap();
        let ms = engine.prefill_latency(32).unwrap().total_ms();
        assert!(ms <= prev, "latency rose with bandwidth at {bw} Gbps: {ms} > {prev}");
        prev = ms;
    }
}

#[test]
fn prefill_latency_grows_with_prompt_length() {
    let engine = MeadowEngine::new(EngineConfig::zcu102(presets::tiny_decoder(), 12.0)).unwrap();
    let mut prev = 0.0;
    for tokens in [4usize, 8, 16, 32, 64] {
        let ms = engine.prefill_latency(tokens).unwrap().total_ms();
        assert!(ms > prev, "prefill did not grow at {tokens} tokens");
        prev = ms;
    }
}

#[test]
fn decode_latency_grows_with_context() {
    let engine =
        MeadowEngine::new(EngineConfig::gemm_baseline(presets::tiny_decoder(), 12.0)).unwrap();
    let short = engine.decode_latency(8, 1).unwrap().total_ms();
    let long = engine.decode_latency(32, 16).unwrap().total_ms();
    assert!(long > short);
}

#[test]
fn gemm_components_sum_to_total_everywhere() {
    for bw in [1.0, 12.0] {
        for model in [presets::tiny_decoder(), presets::opt_125m()] {
            let engine = MeadowEngine::new(EngineConfig::gemm_baseline(model, bw)).unwrap();
            let r = engine.prefill_latency(64).unwrap();
            let (f, c, s) = r.components();
            assert_eq!(f + c + s, r.cycles, "GEMM must be fully sequential");
        }
    }
}

#[test]
fn meadow_makespan_is_overlapped_but_bounded() {
    let engine = MeadowEngine::new(EngineConfig::zcu102(presets::opt_125m(), 12.0)).unwrap();
    let r = engine.prefill_latency(512).unwrap();
    let (f, c, s) = r.components();
    // Overlap can only shrink the total, never below the compute floor.
    assert!(r.cycles <= f + c + s);
    assert!(r.cycles >= c);
}

#[test]
fn packing_never_increases_weight_traffic() {
    let model = presets::opt_125m();
    let packed = MeadowEngine::new(EngineConfig::zcu102(model.clone(), 12.0)).unwrap();
    let raw = MeadowEngine::new(EngineConfig {
        plan: ExecutionPlan { attention: meadow::dataflow::AttentionDataflow::Tphs, packing: None },
        ..EngineConfig::zcu102(model, 12.0)
    })
    .unwrap();
    let p = packed.decode_latency(512, 64).unwrap();
    let r = raw.decode_latency(512, 64).unwrap();
    assert!(
        p.ledger.bytes(TrafficClass::WeightFetch) < r.ledger.bytes(TrafficClass::WeightFetch),
        "packed weight traffic must shrink"
    );
    assert!(p.total_ms() < r.total_ms());
}

#[test]
fn tphs_eliminates_attention_intermediates_gemm_does_not() {
    let model = presets::opt_125m();
    let gemm = MeadowEngine::new(EngineConfig::gemm_baseline(model.clone(), 12.0)).unwrap();
    let meadow = MeadowEngine::new(EngineConfig::zcu102(model, 12.0)).unwrap();
    let g = gemm.prefill_latency(512).unwrap();
    let m = meadow.prefill_latency(512).unwrap();
    let score_bytes = 12u64 * 512 * 512 * 12; // H*T*T per layer × 12 layers
    assert!(g.ledger.bytes(TrafficClass::IntermediateStore) > score_bytes);
    // MEADOW's remaining intermediate stores are only the inter-op
    // activations (LN, MLP mid tensors); the H·T·T score round trips are
    // gone, cutting intermediate-store volume by more than half.
    assert!(
        m.ledger.bytes(TrafficClass::IntermediateStore)
            < g.ledger.bytes(TrafficClass::IntermediateStore) / 2
    );
}

#[test]
fn ledger_volume_is_bandwidth_invariant() {
    // Bytes moved depend on the schedule, not the channel speed.
    let model = presets::tiny_decoder();
    let a = MeadowEngine::new(EngineConfig::zcu102(model.clone(), 1.0)).unwrap();
    let b = MeadowEngine::new(EngineConfig::zcu102(model, 12.0)).unwrap();
    let ra = a.prefill_latency(32).unwrap();
    let rb = b.prefill_latency(32).unwrap();
    assert_eq!(ra.ledger.fetch_bytes(), rb.ledger.fetch_bytes());
    assert_eq!(ra.ledger.store_bytes(), rb.ledger.store_bytes());
}

#[test]
fn baseline_knobs_only_reduce_work() {
    let model = presets::opt_125m();
    let gemm = Baseline::Gemm.engine(model.clone(), 6.0).unwrap();
    let cta = Baseline::Cta { keep_ratio: 0.5 }.engine(model.clone(), 6.0).unwrap();
    let fl = Baseline::FlightLlm { n: 2, m: 4 }.engine(model, 6.0).unwrap();
    let g = gemm.prefill_latency(256).unwrap();
    let c = cta.prefill_latency(256).unwrap();
    let f = fl.prefill_latency(256).unwrap();
    assert!(c.ledger.fetch_bytes() < g.ledger.fetch_bytes());
    assert!(f.total_ms() <= g.total_ms());
}

#[test]
fn report_is_serializable() {
    let engine = MeadowEngine::new(EngineConfig::zcu102(presets::tiny_decoder(), 12.0)).unwrap();
    let r = engine.prefill_latency(16).unwrap();
    let json = serde_json::to_string(&r).unwrap();
    let back: meadow::core::LatencyReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, r);
}
