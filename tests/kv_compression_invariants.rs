//! Invariant tier for the KV layout/compression seam.
//!
//! The seam's contract is *degeneracy*: every layout has a setting that
//! collapses to the dense full-length cache, and at that setting the
//! serving stack must be bit-identical to the pre-seam behavior — same
//! schedule, same bytes, same report JSON (up to the informational `kv`
//! summary block, which only non-dense runs attach). Away from the
//! degenerate points, compressed byte accounting must stay *conservative*:
//! never above the dense accounting of the same context, never created or
//! destroyed by eviction/reload, and always an exact multiple of the
//! layout's per-token footprint. The property section pins the
//! `KvSizer` formulas against brute-force per-token sums and the
//! retained-attention-mass bound `mass ∈ [keep_ratio·(1-ε), 1]`.

use meadow::core::serve::{serve, KvPolicy, SchedulerCore, ServeConfig, ServeReport};
use meadow::core::spec::ServeSpec;
use meadow::core::{EngineConfig, MeadowEngine};
use meadow::models::presets;
use meadow::models::workload::{kv_cache_total_bytes, ArrivalTrace, KvSizer, ServeRequest};
use meadow::models::{KvCompression, KvLayout};
use proptest::prelude::*;

fn engine() -> MeadowEngine {
    MeadowEngine::new(EngineConfig::zcu102(presets::tiny_decoder(), 12.0)).unwrap()
}

/// The pinned arrival set of the golden suite: 8 staggered requests with
/// ragged lengths, overlapping on the tick scale.
fn trace() -> ArrivalTrace {
    ArrivalTrace::new(vec![
        ServeRequest::new(0, 0.0, 16, 8),
        ServeRequest::new(1, 0.0, 24, 4),
        ServeRequest::new(2, 0.01, 8, 6),
        ServeRequest::new(3, 0.015, 31, 2),
        ServeRequest::new(4, 0.02, 4, 8),
        ServeRequest::new(5, 0.03, 12, 5),
        ServeRequest::new(6, 0.05, 20, 3),
        ServeRequest::new(7, 0.08, 6, 7),
    ])
}

/// A contended whole-cache configuration (evictions fire on the trace).
fn contended_config() -> ServeConfig {
    let model = presets::tiny_decoder();
    let budget = 2 * ServeRequest::new(0, 0.0, 31, 2).peak_kv_bytes(&model);
    ServeConfig::default().with_budget(budget).with_policy(KvPolicy::Lru).with_max_batch(4)
}

fn run(config: ServeConfig) -> ServeReport {
    serve(&engine(), &trace(), &config).unwrap()
}

/// Degenerate settings of every layout/compression axis: each must
/// reproduce the dense run exactly. `tiny_decoder` has 4 heads and
/// `max_seq = 64`, so `kv_heads = 4` shares nothing and any
/// `window + sinks ≥ 64` covers every reachable context.
fn degenerate_points() -> [(KvLayout, KvCompression); 4] {
    [
        (KvLayout::GroupedHeads { kv_heads: 4 }, KvCompression::None),
        (KvLayout::SlidingWindow { window: 64, sinks: 0 }, KvCompression::None),
        (KvLayout::SlidingWindow { window: 61, sinks: 3 }, KvCompression::None),
        (KvLayout::Dense, KvCompression::VedaVote { keep_ratio: 1.0 }),
    ]
}

#[test]
fn explicit_dense_is_the_default_and_attaches_no_summary() {
    let dense = run(contended_config());
    assert!(dense.total_evictions > 0, "the scenario must exercise eviction");
    assert!(dense.kv.is_none(), "dense runs must not attach a KV summary");
    let explicit = run(contended_config()
        .with_kv_layout(KvLayout::Dense)
        .with_kv_compression(KvCompression::None));
    assert_eq!(explicit, dense);
}

#[test]
fn degenerate_layouts_reproduce_dense_bit_for_bit() {
    let dense = run(contended_config());
    for (layout, compression) in degenerate_points() {
        let mut report =
            run(contended_config().with_kv_layout(layout).with_kv_compression(compression));
        let kv = report.kv.take().unwrap_or_else(|| {
            panic!("{layout:?}/{compression:?} must attach its (degenerate) KV summary")
        });
        assert_eq!(kv.retained_attention_mass, 1.0, "{layout:?}/{compression:?}");
        assert_eq!(kv.final_kv_bytes, kv.dense_final_kv_bytes, "{layout:?}/{compression:?}");
        assert_eq!(report, dense, "{layout:?}/{compression:?} diverged from the dense oracle");
    }
}

/// Non-degenerate settings: grouped heads, a binding window, and token
/// eviction — alone and combined.
fn compressed_points() -> [(KvLayout, KvCompression); 4] {
    [
        (KvLayout::GroupedHeads { kv_heads: 1 }, KvCompression::None),
        (KvLayout::SlidingWindow { window: 8, sinks: 2 }, KvCompression::None),
        (KvLayout::Dense, KvCompression::VedaVote { keep_ratio: 0.5 }),
        (KvLayout::GroupedHeads { kv_heads: 2 }, KvCompression::VedaVote { keep_ratio: 0.75 }),
    ]
}

#[test]
fn compressed_bytes_never_exceed_dense_and_sum_into_the_summary() {
    let model = presets::tiny_decoder();
    for (layout, compression) in compressed_points() {
        let report =
            run(contended_config().with_kv_layout(layout).with_kv_compression(compression));
        let kv = report.kv.expect("non-dense runs attach a KV summary");
        let mut dense_sum = 0u64;
        let mut actual_sum = 0u64;
        for t in &report.traces {
            assert!(!t.rejected);
            let dense_bytes = kv_cache_total_bytes(&model, t.prompt_tokens + t.generated_tokens);
            assert!(
                t.final_kv_bytes <= dense_bytes,
                "{layout:?}/{compression:?} request {}: {} bytes exceeds dense {}",
                t.id,
                t.final_kv_bytes,
                dense_bytes
            );
            dense_sum += dense_bytes;
            actual_sum += t.final_kv_bytes;
        }
        assert_eq!(kv.dense_final_kv_bytes, dense_sum, "{layout:?}/{compression:?}");
        assert_eq!(kv.final_kv_bytes, actual_sum, "{layout:?}/{compression:?}");
        assert!(kv.final_kv_bytes < kv.dense_final_kv_bytes, "{layout:?}/{compression:?}");
    }
}

/// Eviction and reload move a session's cache out of and back into the
/// budget; they must neither create nor destroy bytes. Every final byte
/// count must equal the sizer's closed-form recomputation of the same
/// context — under a budget tight enough that whole-cache spills and
/// reloads churn throughout the run.
#[test]
fn spill_and_reload_conserve_compressed_bytes_exactly() {
    let model = presets::tiny_decoder();
    for (layout, compression) in compressed_points() {
        let sizer = KvSizer::new(&model, layout, compression).unwrap();
        // ~1.5 peak *compressed* sessions of room: residency churns at the
        // compressed scale.
        let budget = (3 * sizer.bytes(33)) / 2;
        let config = ServeConfig::default()
            .with_budget(budget)
            .with_policy(KvPolicy::Lru)
            .with_max_batch(4)
            .with_kv_layout(layout)
            .with_kv_compression(compression);
        let report = serve(&engine(), &trace(), &config).unwrap();
        assert!(
            report.total_evictions > 0,
            "{layout:?}/{compression:?}: the squeezed budget must churn"
        );
        assert!(report.peak_kv_bytes <= budget, "{layout:?}/{compression:?}");
        for t in &report.traces {
            assert_eq!(
                t.final_kv_bytes,
                sizer.bytes(t.prompt_tokens + t.generated_tokens),
                "{layout:?}/{compression:?} request {}: spill/reload must conserve bytes",
                t.id
            );
        }
    }
}

/// The event-driven core and the per-tick oracle must stay bit-identical
/// on every new layout/compression point (the `SchedulerCore` contract
/// does not bend for the seam). Goes through `ServeSpec`, which also
/// exercises the builder passthroughs.
#[test]
fn scheduler_cores_agree_on_every_compressed_point() {
    let engine = engine();
    let trace = trace();
    for (layout, compression) in compressed_points().into_iter().chain(degenerate_points()) {
        let run_core = |core| {
            ServeSpec::builder()
                .config(contended_config())
                .kv_layout(layout)
                .kv_compression(compression)
                .scheduler(core)
                .build()
                .unwrap()
                .run(&engine, &trace)
                .unwrap()
                .into_single()
                .unwrap()
        };
        let tick = run_core(SchedulerCore::Tick);
        let event = run_core(SchedulerCore::Event);
        assert_eq!(event, tick, "cores diverged on {layout:?}/{compression:?}");
    }
}

/// Brute-force per-token reference for the sliding-window keep rule:
/// token `j` of a length-`len` context survives as an attention sink or
/// inside the recency window.
fn sliding_kept(window: usize, sinks: usize, len: usize) -> usize {
    (0..len).filter(|&j| j < sinks || j + window >= len).count()
}

/// Brute-force reference for the VEDA vote model (sink + recency
/// U-shape): the mass of the `kept` highest-vote tokens.
fn veda_mass(len: usize, kept: usize) -> f64 {
    let votes: Vec<f64> =
        (0..len).map(|j| 1.0 / (j as f64 + 1.0) + 1.0 / ((len - j) as f64)).collect();
    let total: f64 = votes.iter().sum();
    let mut sorted = votes;
    sorted.sort_by(|a, b| b.total_cmp(a));
    let retained: f64 = sorted[..kept].iter().sum();
    (retained / total).min(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dense bytes are the pre-seam identity for every context length.
    #[test]
    fn dense_sizer_matches_the_preseam_formula(len in 0usize..=512) {
        let model = presets::tiny_decoder();
        let sizer = KvSizer::dense(&model);
        prop_assert_eq!(sizer.bytes(len), kv_cache_total_bytes(&model, len));
        prop_assert_eq!(sizer.tokens_kept(len), len);
        prop_assert_eq!(sizer.retained_attention_mass(len), 1.0);
    }

    /// Grouped-heads bytes equal the brute-force per-token sum
    /// `len × 2 × head_dim × kv_heads × layers`, and scale the dense
    /// footprint by exactly `kv_heads / n_heads`.
    #[test]
    fn grouped_heads_bytes_match_brute_force(
        len in 0usize..=512,
        kv_heads_idx in 0usize..3,
    ) {
        let kv_heads = [1usize, 2, 4][kv_heads_idx];
        let model = presets::tiny_decoder();
        let layout = KvLayout::GroupedHeads { kv_heads };
        let sizer = KvSizer::new(&model, layout, KvCompression::None).unwrap();
        let head_dim = model.head_dim();
        let per_token = 2 * (head_dim * kv_heads * model.layers) as u64;
        prop_assert_eq!(sizer.bytes(len), len as u64 * per_token);
        prop_assert_eq!(
            sizer.bytes(len) * model.heads as u64,
            kv_cache_total_bytes(&model, len) * kv_heads as u64
        );
    }

    /// Sliding-window token counts equal the brute-force keep-rule count,
    /// bytes are an exact multiple of the dense per-token footprint, and
    /// the count is monotone in the context length (the add-only paging
    /// contract).
    #[test]
    fn sliding_window_matches_brute_force_and_is_monotone(
        window in 1usize..=96,
        sinks in 0usize..=8,
        len in 0usize..=256,
    ) {
        let model = presets::tiny_decoder();
        let layout = KvLayout::SlidingWindow { window, sinks };
        let sizer = KvSizer::new(&model, layout, KvCompression::None).unwrap();
        let kept = sliding_kept(window, sinks, len);
        prop_assert_eq!(sizer.tokens_kept(len), kept);
        prop_assert_eq!(sizer.bytes(len), kept as u64 * sizer.bytes_per_token());
        if len > 0 {
            prop_assert!(sizer.tokens_kept(len) >= sizer.tokens_kept(len - 1));
        }
    }

    /// VEDA keeps `ceil(keep_ratio · len)` tokens (never zero for a
    /// non-empty context), and its retained attention mass lands in
    /// `[keep_ratio · (1 - ε), 1]` — the kept tokens are the
    /// highest-voted, so the mass can only beat the uniform share.
    #[test]
    fn veda_mass_is_bounded_below_by_the_keep_ratio(
        keep_percent in 1u32..=100,
        len in 0usize..=256,
    ) {
        let keep_ratio = f64::from(keep_percent) / 100.0;
        let model = presets::tiny_decoder();
        let compression = KvCompression::VedaVote { keep_ratio };
        let sizer = KvSizer::new(&model, KvLayout::Dense, compression).unwrap();
        let kept = sizer.tokens_kept(len);
        if len == 0 {
            prop_assert_eq!(kept, 0);
        } else {
            prop_assert_eq!(kept, ((keep_ratio * len as f64).ceil() as usize).clamp(1, len));
        }
        let mass = sizer.retained_attention_mass(len);
        prop_assert!(mass <= 1.0, "mass {} above 1", mass);
        prop_assert!(
            mass >= keep_ratio * (1.0 - 1e-9),
            "mass {} below keep ratio {}",
            mass,
            keep_ratio
        );
    }

    /// The serving-side mass matches the brute-force vote model token for
    /// token, on every context length.
    #[test]
    fn veda_mass_matches_the_brute_force_vote_model(
        keep_percent in 1u32..=100,
        len in 1usize..=128,
    ) {
        let keep_ratio = f64::from(keep_percent) / 100.0;
        let model = presets::tiny_decoder();
        let compression = KvCompression::VedaVote { keep_ratio };
        let sizer = KvSizer::new(&model, KvLayout::Dense, compression).unwrap();
        let kept = sizer.tokens_kept(len);
        let got = sizer.retained_attention_mass(len);
        let want = veda_mass(len, kept);
        prop_assert!(
            (got - want).abs() < 1e-12,
            "mass {} vs brute force {} (len {}, kept {})",
            got,
            want,
            len,
            kept
        );
    }

    /// Compression composes with layouts: for any layout, VEDA bytes are
    /// `tokens_kept × bytes_per_token` with the structural count applied
    /// first, and never exceed the uncompressed layout bytes.
    #[test]
    fn veda_composes_with_layouts_and_stays_below_them(
        keep_percent in 1u32..=100,
        len in 0usize..=256,
        layout_idx in 0usize..3,
    ) {
        let keep_ratio = f64::from(keep_percent) / 100.0;
        let model = presets::tiny_decoder();
        let layout = match layout_idx {
            0 => KvLayout::Dense,
            1 => KvLayout::GroupedHeads { kv_heads: 2 },
            _ => KvLayout::SlidingWindow { window: 16, sinks: 2 },
        };
        let plain = KvSizer::new(&model, layout, KvCompression::None).unwrap();
        let veda =
            KvSizer::new(&model, layout, KvCompression::VedaVote { keep_ratio }).unwrap();
        prop_assert_eq!(veda.bytes(len), veda.tokens_kept(len) as u64 * veda.bytes_per_token());
        prop_assert!(veda.bytes(len) <= plain.bytes(len));
        prop_assert!(veda.tokens_kept(len) <= plain.tokens_kept(len));
    }
}
