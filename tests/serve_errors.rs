//! Negative-path coverage for the serving stack: every typed
//! [`ServeError`] variant must be reachable through the public front door
//! ([`ServeSpec::builder`] and the `ServeConfig` builders), and its
//! `Display` rendering must stay stable — the strings are part of the
//! diagnostic contract (they land in logs, CI output and the repro
//! harness), so changing one is an API change, not a cosmetic edit.

use meadow::core::cluster::{ChipLoad, PhaseAssignment, PhasePlacement, PlacementPolicy};
use meadow::core::serve::{AdmissionPolicy, KvPolicy, ServeConfig, ServeError, SpecDecode};
use meadow::core::spec::ServeSpec;
use meadow::core::{CoreError, EngineConfig, MeadowEngine};
use meadow::models::presets;
use meadow::models::workload::{ArrivalTrace, ServeRequest};
use meadow::models::{KvCompression, KvLayout};

fn engine() -> MeadowEngine {
    MeadowEngine::new(EngineConfig::zcu102(presets::tiny_decoder(), 12.0)).unwrap()
}

/// Builds a spec expected to fail validation, returning the build error.
fn build_err(config: ServeConfig) -> ServeError {
    ServeSpec::builder().config(config).build().unwrap_err()
}

#[test]
fn zero_max_batch_is_rejected_at_build() {
    let err = build_err(ServeConfig::default().with_max_batch(0));
    assert_eq!(err, ServeError::ZeroMaxBatch);
    assert_eq!(err.to_string(), "max_batch must step at least one session per tick");
}

#[test]
fn zero_page_bytes_is_rejected_at_build() {
    let err = build_err(ServeConfig::default().with_policy(KvPolicy::PagedLru).with_page_bytes(0));
    assert_eq!(err, ServeError::ZeroPageBytes);
    assert_eq!(err.to_string(), "PagedLru needs a non-zero page size");
}

#[test]
fn non_finite_slo_is_rejected_at_build() {
    let err = build_err(
        ServeConfig::default()
            .with_admission(AdmissionPolicy::RejectAfter { ttft_slo_ms: f64::NAN }),
    );
    assert!(matches!(err, ServeError::InvalidSlo { ttft_slo_ms } if ttft_slo_ms.is_nan()));
    let err = build_err(
        ServeConfig::default().with_admission(AdmissionPolicy::RejectAfter { ttft_slo_ms: -1.0 }),
    );
    assert_eq!(err, ServeError::InvalidSlo { ttft_slo_ms: -1.0 });
    assert_eq!(err.to_string(), "ttft_slo_ms must be finite and non-negative, got -1");
}

#[test]
fn zero_chips_is_rejected_at_build() {
    let err = ServeSpec::builder().chips(0).build().unwrap_err();
    assert_eq!(err, ServeError::ZeroChips);
    assert_eq!(err.to_string(), "a cluster needs at least one chip");
}

#[test]
fn invalid_speculation_is_rejected_at_build() {
    let spec = SpecDecode { draft_len: 0, acceptance: 0.5, draft_cost_ratio: 0.5 };
    let err = build_err(ServeConfig::default().with_speculation(spec));
    assert_eq!(
        err,
        ServeError::InvalidSpeculation { draft_len: 0, acceptance: 0.5, draft_cost_ratio: 0.5 }
    );
    assert_eq!(
        err.to_string(),
        "speculation needs draft_len >= 1, acceptance in [0, 1] and a finite non-negative \
         draft_cost_ratio, got (0, 0.5, 0.5)"
    );
}

#[test]
fn structurally_invalid_kv_layouts_are_rejected_at_build() {
    let err =
        build_err(ServeConfig::default().with_kv_layout(KvLayout::GroupedHeads { kv_heads: 0 }));
    assert_eq!(
        err,
        ServeError::InvalidKvLayout {
            reason: "GroupedHeads needs at least one kv head".to_string(),
        }
    );
    assert_eq!(err.to_string(), "invalid KV layout: GroupedHeads needs at least one kv head");

    let err = build_err(
        ServeConfig::default().with_kv_layout(KvLayout::SlidingWindow { window: 0, sinks: 4 }),
    );
    assert_eq!(
        err.to_string(),
        "invalid KV layout: SlidingWindow needs a window of at least one token"
    );

    let err = build_err(
        ServeConfig::default().with_kv_compression(KvCompression::VedaVote { keep_ratio: 0.0 }),
    );
    assert_eq!(err.to_string(), "invalid KV layout: VedaVote keep_ratio must be in (0, 1], got 0");

    let err = build_err(
        ServeConfig::default().with_kv_compression(KvCompression::VedaVote { keep_ratio: 1.5 }),
    );
    assert_eq!(
        err.to_string(),
        "invalid KV layout: VedaVote keep_ratio must be in (0, 1], got 1.5"
    );
}

/// `kv_heads` must divide the model's head count — a constraint only the
/// engine's model can check, so it surfaces at run time, not build time.
#[test]
fn model_incompatible_kv_layout_is_rejected_at_run() {
    // tiny_decoder has 4 heads; 3 does not divide it.
    let spec = ServeSpec::builder()
        .config(ServeConfig::default())
        .kv_layout(KvLayout::GroupedHeads { kv_heads: 3 })
        .build()
        .expect("the structural checks cannot see the model");
    let err = spec.run(&engine(), &ArrivalTrace::uniform(2, 0.0, 16, 4)).unwrap_err();
    let CoreError::Serve(err) = err else { panic!("expected a serve error, got {err:?}") };
    assert!(matches!(&err, ServeError::InvalidKvLayout { .. }), "got {err:?}");
    assert_eq!(
        err.to_string(),
        "invalid KV layout: invalid model config `kv_heads`: 3 must divide the model's 4 heads"
    );
}

#[test]
fn oversized_request_is_rejected_at_run() {
    let spec = ServeSpec::builder().config(ServeConfig::default().with_budget(1)).build().unwrap();
    let err = spec.run(&engine(), &ArrivalTrace::uniform(1, 0.0, 16, 4)).unwrap_err();
    let CoreError::Serve(err) = err else { panic!("expected a serve error, got {err:?}") };
    let ServeError::RequestExceedsBudget { id, peak_bytes, budget_bytes } = err else {
        panic!("expected RequestExceedsBudget, got {err:?}");
    };
    assert_eq!((id, budget_bytes), (0, 1));
    assert_eq!(
        err.to_string(),
        format!("request 0 needs {peak_bytes} KV bytes alone, per-chip budget is 1")
    );
}

/// Compression shrinks the admission precheck too: a request that cannot
/// fit densely is admissible once token eviction halves its footprint.
#[test]
fn compression_relaxes_the_admission_precheck() {
    let model = presets::tiny_decoder();
    let peak = ServeRequest::new(0, 0.0, 16, 4).peak_kv_bytes(&model);
    // Half a dense peak: the dense run cannot admit the request at all,
    // the keep-half run can.
    let config = ServeConfig::default().with_budget(peak / 2);
    let trace = ArrivalTrace::uniform(1, 0.0, 16, 4);
    let dense = ServeSpec::builder().config(config).build().unwrap();
    assert!(matches!(
        dense.run(&engine(), &trace),
        Err(CoreError::Serve(ServeError::RequestExceedsBudget { .. }))
    ));
    let compressed = ServeSpec::builder()
        .config(config)
        .kv_compression(KvCompression::VedaVote { keep_ratio: 0.5 })
        .build()
        .unwrap();
    let report = compressed.run(&engine(), &trace).unwrap().into_single().unwrap();
    assert_eq!(report.rejected_requests, 0);
    assert_eq!(report.total_generated_tokens, 4);
}

#[test]
fn zero_weight_budget_is_rejected_at_build() {
    let err = build_err(ServeConfig::default().with_weight_budget(0));
    assert_eq!(err, ServeError::ZeroWeightBudget);
    assert_eq!(
        err.to_string(),
        "a zero weight budget cannot hold any model; leave it unset instead"
    );
}

/// A non-zero budget that still cannot hold one model is a constraint
/// only the engine's model can check, so it surfaces at run time.
#[test]
fn weight_budget_smaller_than_one_model_is_rejected_at_run() {
    let weight_bytes = presets::tiny_decoder().total_weight_bytes();
    let spec = ServeSpec::builder()
        .config(ServeConfig::default().with_weight_budget(1))
        .build()
        .expect("the structural checks cannot see the model");
    let err = spec.run(&engine(), &ArrivalTrace::uniform(1, 0.0, 16, 4)).unwrap_err();
    let CoreError::Serve(err) = err else { panic!("expected a serve error, got {err:?}") };
    assert_eq!(err, ServeError::WeightBudgetTooSmall { budget_bytes: 1, weight_bytes });
    assert_eq!(
        err.to_string(),
        format!("weight budget 1 cannot hold a single model's {weight_bytes} weight bytes")
    );
}

/// Without a weight budget there is no tenancy: the chip serves only its
/// one permanently-resident model 0, and any other `model_id` is a typed
/// run-time error rather than a silently ignored tag.
#[test]
fn unknown_model_without_a_weight_budget_is_rejected_at_run() {
    let mut trace = ArrivalTrace::uniform(2, 0.0, 16, 4);
    trace.requests[1] = trace.requests[1].with_model(3);
    let spec = ServeSpec::builder().config(ServeConfig::default()).build().unwrap();
    let err = spec.run(&engine(), &trace).unwrap_err();
    let CoreError::Serve(err) = err else { panic!("expected a serve error, got {err:?}") };
    assert_eq!(err, ServeError::UnknownModel { model_id: 3 });
    assert_eq!(
        err.to_string(),
        "request targets model 3 but the chip serves only the resident model 0; set a weight \
         budget to enable multi-model tenancy"
    );
    // The same trace is servable once a budget turns tenancy on.
    let tenant = ServeSpec::builder()
        .config(ServeConfig::default())
        .weight_budget(presets::tiny_decoder().total_weight_bytes())
        .weight_streaming(true)
        .build()
        .unwrap();
    let report = tenant.run(&engine(), &trace).unwrap().into_single().unwrap();
    assert_eq!(report.weights.unwrap().models, 2);
}

#[test]
fn empty_chip_specs_are_rejected_at_build() {
    let err = ServeSpec::builder().chip_specs(vec![]).build().unwrap_err();
    assert_eq!(err, ServeError::EmptyChipSpecs);
    assert_eq!(err.to_string(), "chip_specs needs at least one per-chip engine spec");
}

#[test]
fn mismatched_chip_specs_and_chips_are_rejected_at_build() {
    let spec = EngineConfig::zcu102(presets::tiny_decoder(), 12.0);
    let err =
        ServeSpec::builder().chips(3).chip_specs(vec![spec.clone(), spec]).build().unwrap_err();
    assert_eq!(err, ServeError::ChipSpecCountMismatch { specs: 2, chips: 3 });
    assert_eq!(
        err.to_string(),
        "chip_specs lists 2 chips but chips(3) was also set; size the cluster with one of them, \
         not both"
    );
}

#[test]
fn invalid_chip_spec_is_rejected_at_build() {
    let good = EngineConfig::zcu102(presets::tiny_decoder(), 12.0);
    let bad = EngineConfig::zcu102(presets::tiny_decoder(), 0.0);
    let err = ServeSpec::builder().chip_specs(vec![good, bad]).build().unwrap_err();
    let ServeError::InvalidChipSpec { chip, .. } = &err else {
        panic!("expected InvalidChipSpec, got {err:?}");
    };
    assert_eq!(*chip, 1);
    assert!(err.to_string().starts_with("chip spec 1 is invalid: "), "got {err}");
}

#[test]
fn mixed_model_chip_specs_are_rejected_at_build() {
    let a = EngineConfig::zcu102(presets::tiny_decoder(), 12.0);
    let b = EngineConfig::zcu102(presets::opt_125m(), 12.0);
    let err = ServeSpec::builder().chip_specs(vec![a, b]).build().unwrap_err();
    assert_eq!(
        err,
        ServeError::InvalidChipSpec {
            chip: 1,
            reason: "all chips of a cluster must serve the same model architecture".to_string(),
        }
    );
}

#[test]
fn wrong_sized_link_hops_are_rejected_at_build() {
    let err = ServeSpec::builder().chips(3).link_hops(vec![1]).build().unwrap_err();
    assert_eq!(err, ServeError::InvalidLinkHops { got: 1, expected: 2 });
    assert_eq!(
        err.to_string(),
        "link hop costs cover 1 links but the cluster's linear interconnect has 2"
    );
}

#[test]
fn infeasible_slo_is_a_typed_planner_error() {
    use meadow::core::capacity::{CapacityPlanner, PaletteMix, SloTarget};
    let slo = SloTarget { p95_ttft_ms: 0.001, max_rejected_fraction: None };
    let mix = PaletteMix::new("big", vec![EngineConfig::zcu102(presets::tiny_decoder(), 12.0)]);
    let err = CapacityPlanner::new(ServeConfig::default(), slo)
        .max_chips(2)
        .plan(&ArrivalTrace::uniform(8, 0.0, 16, 4), &[mix])
        .unwrap_err();
    let CoreError::Serve(err) = err else { panic!("expected a serve error, got {err:?}") };
    let ServeError::InfeasibleSlo { p95_ttft_ms, max_chips, best_p95_ms } = &err else {
        panic!("expected InfeasibleSlo, got {err:?}");
    };
    assert_eq!((*p95_ttft_ms, *max_chips), (0.001, 2));
    assert!(*best_p95_ms > 0.0);
    assert_eq!(
        err.to_string(),
        format!(
            "no fleet of up to 2 chips meets p95 TTFT <= 0.001 ms; best probed fleet achieved \
             {best_p95_ms} ms"
        )
    );
}

#[test]
fn out_of_range_placement_is_rejected_at_run() {
    #[derive(Debug)]
    struct Wild;
    impl PlacementPolicy for Wild {
        fn name(&self) -> &'static str {
            "wild"
        }
        fn place(&self, _: usize, _: &ServeRequest, loads: &[ChipLoad]) -> usize {
            loads.len()
        }
    }
    let spec = ServeSpec::builder().chips(2).placement(Wild).build().unwrap();
    let err = spec.run(&engine(), &ArrivalTrace::uniform(2, 0.0, 16, 4)).unwrap_err();
    let CoreError::Serve(err) = err else { panic!("expected a serve error, got {err:?}") };
    assert_eq!(err, ServeError::PlacementOutOfRange { chip: 2, chips: 2 });
    assert_eq!(err.to_string(), "placement routed a request to chip 2 of a 2-chip cluster");
}

#[test]
fn phase_overlap_is_rejected_at_run() {
    #[derive(Debug)]
    struct Tangled;
    impl PhasePlacement for Tangled {
        fn name(&self) -> &'static str {
            "tangled"
        }
        fn place_phases(
            &self,
            seq: usize,
            _: &ServeRequest,
            _: &[ChipLoad],
            _: usize,
        ) -> PhaseAssignment {
            if seq.is_multiple_of(2) {
                PhaseAssignment { prefill_chip: 0, decode_chip: 1 }
            } else {
                PhaseAssignment::colocated(1)
            }
        }
    }
    let spec = ServeSpec::builder().chips(2).phases(Tangled).build().unwrap();
    let err = spec.run(&engine(), &ArrivalTrace::uniform(4, 0.0, 8, 2)).unwrap_err();
    let CoreError::Serve(err) = err else { panic!("expected a serve error, got {err:?}") };
    assert_eq!(err, ServeError::PhaseOverlap { chip: 1 });
    assert_eq!(
        err.to_string(),
        "phase placement routed both prefill-stage and decode-stage legs to chip 1; the stage \
         pools must be disjoint"
    );
}
