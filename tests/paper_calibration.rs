//! Paper-shape calibration: the headline results of §6, asserted with
//! tolerance bands.
//!
//! Absolute numbers cannot match the authors' physical ZCU102 board — the
//! substrate here is a simulator — but the *shape* must hold: who wins, by
//! roughly what factor, and where crossovers fall. Bands below bracket the
//! paper's reported ranges with modest slack; `EXPERIMENTS.md` records the
//! exact measured values next to the paper's.

use meadow::core::baselines::Baseline;
use meadow::core::planner::{dataflow_grid, paper_grid_axes};
use meadow::core::vit::vit_speedup;
use meadow::core::MeadowEngine;
use meadow::dataflow::AttentionDataflow;
use meadow::models::presets;
use meadow::models::weights::ModelPackingStats;
use meadow::packing::{PackingConfig, PackingLevel};
use std::sync::OnceLock;

fn engine(baseline: Baseline, model: &meadow::models::TransformerConfig, bw: f64) -> MeadowEngine {
    static STATS: OnceLock<
        std::sync::Mutex<std::collections::BTreeMap<String, ModelPackingStats>>,
    > = OnceLock::new();
    let cache = STATS.get_or_init(Default::default);
    let config = baseline.engine_config(model.clone(), bw);
    let stats = if config.plan.packing.is_some() {
        let mut cache = cache.lock().unwrap();
        Some(
            cache
                .entry(model.name.clone())
                .or_insert_with(|| {
                    ModelPackingStats::compute(
                        model,
                        &PackingConfig::default(),
                        PackingLevel::FrequencyAware,
                    )
                    .expect("stats computable")
                })
                .clone(),
        )
    } else {
        None
    };
    MeadowEngine::with_packing_stats(config, stats).expect("engine constructible")
}

fn prefill_speedup(model: &meadow::models::TransformerConfig, bw: f64, tokens: usize) -> f64 {
    let g = engine(Baseline::Gemm, model, bw).prefill_latency(tokens).unwrap().total_ms();
    let m = engine(Baseline::Meadow, model, bw).prefill_latency(tokens).unwrap().total_ms();
    g / m
}

fn decode_speedup(model: &meadow::models::TransformerConfig, bw: f64, idx: usize) -> f64 {
    let g = engine(Baseline::Gemm, model, bw).decode_latency(512, idx).unwrap().total_ms();
    let m = engine(Baseline::Meadow, model, bw).decode_latency(512, idx).unwrap().total_ms();
    g / m
}

#[test]
fn fig6_prefill_speedups_in_band() {
    // Paper: 125M 1.5-1.7x @ 12 Gbps, 1.57-2.5x @ 1 Gbps;
    //        1.3B 1.5-1.6x @ 12 Gbps, 1.55-2x @ 1 Gbps.
    let m125 = presets::opt_125m();
    for tokens in [64usize, 512] {
        let s12 = prefill_speedup(&m125, 12.0, tokens);
        assert!((1.3..=1.8).contains(&s12), "125M @12 t={tokens}: {s12}");
        let s1 = prefill_speedup(&m125, 1.0, tokens);
        assert!((1.4..=2.6).contains(&s1), "125M @1 t={tokens}: {s1}");
    }
    let m13 = presets::opt_1_3b();
    let s12 = prefill_speedup(&m13, 12.0, 512);
    assert!((1.25..=1.7).contains(&s12), "1.3B @12: {s12}");
    let s1 = prefill_speedup(&m13, 1.0, 512);
    assert!((1.4..=2.2).contains(&s1), "1.3B @1: {s1}");
}

#[test]
fn fig7_decode_speedups_in_band() {
    // Paper: 125M 1.4-1.46x @ 12 Gbps, 1.4-1.47x @ 1 Gbps;
    //        1.3B 1.4-1.52x / 1.5-1.53x.
    let m125 = presets::opt_125m();
    for idx in [64usize, 512] {
        let s12 = decode_speedup(&m125, 12.0, idx);
        assert!((1.3..=1.7).contains(&s12), "125M @12 n={idx}: {s12}");
        let s1 = decode_speedup(&m125, 1.0, idx);
        assert!((1.3..=1.75).contains(&s1), "125M @1 n={idx}: {s1}");
    }
    let m13 = presets::opt_1_3b();
    let s = decode_speedup(&m13, 12.0, 64);
    assert!((1.25..=1.65).contains(&s), "1.3B @12: {s}");
}

#[test]
fn prefill_gains_grow_as_bandwidth_shrinks() {
    // The paper's central trend: MEADOW's advantage widens under bandwidth
    // pressure (Fig. 6).
    let model = presets::opt_125m();
    let high_bw = prefill_speedup(&model, 12.0, 512);
    let low_bw = prefill_speedup(&model, 1.0, 512);
    assert!(low_bw > high_bw, "speedup must widen: {low_bw} vs {high_bw}");
}

#[test]
fn fig11_end_to_end_improvement_over_prior_works() {
    // Paper §6.4: >40% end-to-end improvement vs CTA and FlightLLM. Our
    // substrate reproduces 27-40% depending on bandwidth and workload mix
    // (see EXPERIMENTS.md): every point clears 25%, and the 1 Gbps
    // prefill-weighted point vs FlightLLM reaches ≈40%.
    let model = presets::opt_125m();
    for bw in [1.0, 12.0] {
        let meadow = engine(Baseline::Meadow, &model, bw);
        let m = meadow.end_to_end_latency(512, 64).unwrap().total_ms;
        for b in [Baseline::Cta { keep_ratio: 0.5 }, Baseline::FlightLlm { n: 2, m: 4 }] {
            let o = engine(b, &model, bw).end_to_end_latency(512, 64).unwrap().total_ms;
            let improvement = (o - m) / o;
            assert!(improvement > 0.25, "@{bw} Gbps vs {}: {improvement}", b.name());
        }
    }
    // The strongest point: prefill-weighted request at 1 Gbps vs FlightLLM.
    let m = engine(Baseline::Meadow, &model, 1.0).end_to_end_latency(512, 16).unwrap().total_ms;
    let o = engine(Baseline::FlightLlm { n: 2, m: 4 }, &model, 1.0)
        .end_to_end_latency(512, 16)
        .unwrap()
        .total_ms;
    assert!((o - m) / o > 0.38, "strongest point: {}", (o - m) / o);
}

#[test]
fn fig12a_dataflow_choice_corners() {
    // Paper Fig. 12a: GEMM optimal across PE counts at 51 Gbps; TPHS at
    // 1 Gbps.
    let model = presets::opt_125m();
    let (bws, pes) = paper_grid_axes();
    let grid = dataflow_grid(&model, None, PackingConfig::default(), &bws, &pes, 512).unwrap();
    for e in &grid {
        if e.bandwidth_gbps >= 51.0 {
            assert_eq!(e.best, AttentionDataflow::Gemm, "(51, {})", e.total_pes);
        }
        if e.bandwidth_gbps <= 1.0 {
            assert_eq!(e.best, AttentionDataflow::Tphs, "(1, {})", e.total_pes);
        }
    }
}

#[test]
fn fig13_vit_band() {
    // Paper: DeiT-S/B 1.5-1.6x across bandwidths.
    for model in [presets::deit_s(), presets::deit_b()] {
        for bw in [3.0, 12.0] {
            let c = vit_speedup(&model, bw).unwrap();
            assert!((1.2..=2.0).contains(&c.speedup), "{} @ {bw}: {}", model.name, c.speedup);
        }
    }
}

#[test]
fn sub_ten_watt_envelope_holds_at_every_measured_point() {
    let model = presets::opt_125m();
    for bw in [1.0, 12.0] {
        let e = engine(Baseline::Meadow, &model, bw);
        let prefill = e.prefill_latency(512).unwrap();
        let p = e.power_report(&prefill, 512, 512);
        assert!(p.average_watts < 10.0, "@{bw} Gbps: {} W", p.average_watts);
        let decode = e.decode_latency(512, 64).unwrap();
        let p = e.power_report(&decode, 1, 575);
        assert!(p.average_watts < 10.0, "@{bw} Gbps decode: {} W", p.average_watts);
    }
}
