//! Property suite for the open-loop workload generators:
//! `ArrivalTrace::poisson` / `ArrivalTrace::open_loop` and `ZipfLengths`.
//! Pins seed-determinism (the same seed replays the same trace byte for
//! byte), length bounds, and non-decreasing arrival times across the whole
//! parameter space the generators accept.

use meadow::models::presets;
use meadow::models::workload::{ArrivalTrace, ZipfLengths};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Poisson traces are seed-deterministic, id-sequential, and their
    /// arrival times are finite, non-negative and non-decreasing for any
    /// positive rate.
    #[test]
    fn poisson_is_deterministic_ordered_and_finite(
        seed in any::<u64>(),
        n in 0usize..40,
        rate_millis in 1u64..5_000_000,
        prompt in 1usize..32,
        generate in 1usize..16,
    ) {
        let rate = rate_millis as f64 / 1e3;
        let a =
            ArrivalTrace::poisson(n, rate, prompt, generate, &mut StdRng::seed_from_u64(seed))
                .unwrap();
        let b =
            ArrivalTrace::poisson(n, rate, prompt, generate, &mut StdRng::seed_from_u64(seed))
                .unwrap();
        prop_assert_eq!(&a, &b, "same seed must replay the same trace");
        prop_assert_eq!(a.requests.len(), n);
        for (i, r) in a.requests.iter().enumerate() {
            prop_assert_eq!(r.id, i as u32);
            prop_assert_eq!((r.prompt_tokens, r.generate_tokens), (prompt, generate));
            prop_assert!(r.arrival_ms.is_finite() && r.arrival_ms >= 0.0);
            prop_assert_eq!(r.affinity, None);
        }
        prop_assert!(
            a.requests.windows(2).all(|w| w[0].arrival_ms <= w[1].arrival_ms),
            "arrival times must be non-decreasing"
        );
    }

    /// Consuming the rng changes the trace (the generator actually draws
    /// from it), while a fresh rng with the same seed replays it.
    #[test]
    fn poisson_draws_from_the_rng(seed in any::<u64>(), n in 1usize..20) {
        let mut rng = StdRng::seed_from_u64(seed);
        let first = ArrivalTrace::poisson(n, 100.0, 8, 4, &mut rng).unwrap();
        let second = ArrivalTrace::poisson(n, 100.0, 8, 4, &mut rng).unwrap();
        // The rng must advance between traces.
        prop_assert_ne!(&first, &second);
    }

    /// Open-loop traces keep every sampled length inside the configured
    /// Zipf bounds, stay seed-deterministic, and inherit the Poisson
    /// arrival ordering.
    #[test]
    fn open_loop_respects_bounds_and_replays(
        seed in any::<u64>(),
        n in 0usize..40,
        prompt_min in 1usize..8,
        prompt_span in 0usize..24,
        generate_min in 1usize..8,
        generate_span in 0usize..16,
        exponent_tenths in 5u32..30,
    ) {
        let lengths = ZipfLengths {
            prompt_min,
            prompt_max: prompt_min + prompt_span,
            generate_min,
            generate_max: generate_min + generate_span,
            exponent: f64::from(exponent_tenths) / 10.0,
        };
        lengths.validate().unwrap();
        let a = ArrivalTrace::open_loop(n, 50.0, &lengths, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        let b = ArrivalTrace::open_loop(n, 50.0, &lengths, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        prop_assert_eq!(&a, &b, "same seed must replay the same trace");
        prop_assert_eq!(a.requests.len(), n);
        for r in &a.requests {
            prop_assert!(
                (lengths.prompt_min..=lengths.prompt_max).contains(&r.prompt_tokens),
                "prompt {} outside [{}, {}]",
                r.prompt_tokens,
                lengths.prompt_min,
                lengths.prompt_max
            );
            prop_assert!(
                (lengths.generate_min..=lengths.generate_max).contains(&r.generate_tokens),
                "generation {} outside [{}, {}]",
                r.generate_tokens,
                lengths.generate_min,
                lengths.generate_max
            );
            prop_assert!(r.arrival_ms.is_finite() && r.arrival_ms >= 0.0);
        }
        prop_assert!(a.requests.windows(2).all(|w| w[0].arrival_ms <= w[1].arrival_ms));
        // Bounded lengths validate against any model that can hold them.
        if lengths.prompt_max + lengths.generate_max
            <= presets::tiny_decoder().max_seq
        {
            a.validate(&presets::tiny_decoder()).unwrap();
        }
    }

    /// Diurnal traces are seed-deterministic, ordered, and bounded by the
    /// Poisson envelope: with one exponential draw per request regardless
    /// of the instantaneous rate, every arrival lands between the
    /// same-seed Poisson trace at the faster rate (earliest) and at the
    /// slower rate (latest) — and equal day/night rates collapse to
    /// exactly the Poisson generator.
    #[test]
    fn diurnal_is_deterministic_and_poisson_enveloped(
        seed in any::<u64>(),
        n in 0usize..40,
        day_millis in 1u64..5_000_000,
        night_millis in 1u64..5_000_000,
        phase_ms in 1.0f64..10_000.0,
        prompt in 1usize..32,
        generate in 1usize..16,
    ) {
        let (day, night) = (day_millis as f64 / 1e3, night_millis as f64 / 1e3);
        let gen = |d: f64, ng: f64| {
            ArrivalTrace::diurnal(
                n, d, ng, phase_ms, prompt, generate, &mut StdRng::seed_from_u64(seed),
            )
            .unwrap()
        };
        let a = gen(day, night);
        prop_assert_eq!(&a, &gen(day, night), "same seed must replay the same trace");
        prop_assert_eq!(a.requests.len(), n);
        for (i, r) in a.requests.iter().enumerate() {
            prop_assert_eq!(r.id, i as u32);
            prop_assert_eq!((r.prompt_tokens, r.generate_tokens), (prompt, generate));
            prop_assert!(r.arrival_ms.is_finite() && r.arrival_ms >= 0.0);
            prop_assert_eq!(r.model(), 0, "diurnal arrivals default to model 0");
        }
        prop_assert!(
            a.requests.windows(2).all(|w| w[0].arrival_ms <= w[1].arrival_ms),
            "arrival times must be non-decreasing"
        );
        // Rate envelope: the same draws at the fast rate arrive no later,
        // and at the slow rate no earlier, request for request.
        let (hi, lo) = (day.max(night), day.min(night));
        let fast =
            ArrivalTrace::poisson(n, hi, prompt, generate, &mut StdRng::seed_from_u64(seed))
                .unwrap();
        let slow =
            ArrivalTrace::poisson(n, lo, prompt, generate, &mut StdRng::seed_from_u64(seed))
                .unwrap();
        for ((r, f), s) in a.requests.iter().zip(&fast.requests).zip(&slow.requests) {
            prop_assert!(
                f.arrival_ms <= r.arrival_ms && r.arrival_ms <= s.arrival_ms,
                "arrival {} outside Poisson envelope [{}, {}]",
                r.arrival_ms,
                f.arrival_ms,
                s.arrival_ms
            );
        }
        // Equal rates: the square wave is invisible and the generator IS
        // Poisson, draw for draw.
        prop_assert_eq!(
            gen(day, day),
            ArrivalTrace::poisson(n, day, prompt, generate, &mut StdRng::seed_from_u64(seed))
                .unwrap()
        );
    }

    /// Multi-model mixes are exactly proportional (largest-remainder:
    /// every model's request count is the floor or ceiling of its ideal
    /// share), cover only declared models, and are deterministic — no rng
    /// is consumed at all.
    #[test]
    fn model_mix_is_exactly_proportional(
        seed in any::<u64>(),
        n in 0usize..60,
        weights in proptest::collection::vec(0u32..100, 1..5),
    ) {
        let mut weights = weights;
        if weights.iter().all(|&w| w == 0) {
            // An all-zero draw is a typed error (covered below); nudge it
            // into the valid space instead of discarding the case.
            weights[0] = 1;
        }
        let mix: Vec<f64> = weights.iter().map(|&w| f64::from(w)).collect();
        let base = ArrivalTrace::poisson(n, 50.0, 8, 4, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        let tagged = base.clone().with_model_mix(&mix).unwrap();
        prop_assert_eq!(
            &tagged,
            &base.clone().with_model_mix(&mix).unwrap(),
            "the mix assignment must be deterministic"
        );
        // Tagging never touches arrival times or lengths.
        for (t, b) in tagged.requests.iter().zip(&base.requests) {
            prop_assert_eq!(t.arrival_ms, b.arrival_ms);
            prop_assert_eq!((t.prompt_tokens, t.generate_tokens), (b.prompt_tokens, b.generate_tokens));
            prop_assert!((t.model() as usize) < mix.len(), "model id outside the mix");
        }
        let total: f64 = mix.iter().sum();
        let mut counts = vec![0usize; mix.len()];
        for r in &tagged.requests {
            counts[r.model() as usize] += 1;
        }
        prop_assert_eq!(counts.iter().sum::<usize>(), n);
        for (m, (&count, &w)) in counts.iter().zip(&mix).enumerate() {
            let ideal = n as f64 * w / total;
            prop_assert!(
                count as f64 >= ideal.floor() && count as f64 <= ideal.ceil(),
                "model {m} got {count} requests, ideal share {ideal}"
            );
        }
    }

    /// Invalid rates and length configurations are rejected for every
    /// seed, never silently accepted.
    #[test]
    fn generators_reject_invalid_parameters(seed in any::<u64>(), n in 1usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        for rate in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            prop_assert!(ArrivalTrace::poisson(n, rate, 8, 4, &mut rng).is_err());
        }
        // Diurnal: both rates and the phase must be finite and positive.
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            prop_assert!(ArrivalTrace::diurnal(n, bad, 10.0, 50.0, 8, 4, &mut rng).is_err());
            prop_assert!(ArrivalTrace::diurnal(n, 10.0, bad, 50.0, 8, 4, &mut rng).is_err());
            prop_assert!(ArrivalTrace::diurnal(n, 10.0, 10.0, bad, 8, 4, &mut rng).is_err());
        }
        // Model mixes: empty, non-finite, negative and all-zero are typed
        // errors, not silent tags.
        let trace = ArrivalTrace::uniform(n, 1.0, 8, 4);
        prop_assert!(trace.clone().with_model_mix(&[]).is_err());
        prop_assert!(trace.clone().with_model_mix(&[1.0, f64::NAN]).is_err());
        prop_assert!(trace.clone().with_model_mix(&[1.0, -0.5]).is_err());
        prop_assert!(trace.clone().with_model_mix(&[0.0, 0.0]).is_err());
        let ok = ZipfLengths {
            prompt_min: 2,
            prompt_max: 8,
            generate_min: 1,
            generate_max: 4,
            exponent: 1.1,
        };
        for bad in [
            ZipfLengths { prompt_min: 0, ..ok },
            ZipfLengths { generate_min: 0, ..ok },
            ZipfLengths { prompt_max: 1, ..ok },
            ZipfLengths { generate_max: 0, ..ok },
            ZipfLengths { exponent: 0.0, ..ok },
            ZipfLengths { exponent: -1.0, ..ok },
            ZipfLengths { exponent: f64::NAN, ..ok },
        ] {
            prop_assert!(bad.validate().is_err());
            prop_assert!(ArrivalTrace::open_loop(n, 50.0, &bad, &mut rng).is_err());
        }
    }
}
