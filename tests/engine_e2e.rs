//! End-to-end engine workflows across every baseline and model preset:
//! construction, measurement, report consistency and failure paths.

use meadow::core::accuracy::verify_model_lossless;
use meadow::core::baselines::Baseline;
use meadow::core::{EngineConfig, MeadowEngine};
use meadow::models::presets;
use meadow::packing::PackingConfig;
use meadow::sim::Cycles;

#[test]
fn every_baseline_runs_on_every_decoder_preset() {
    for model in [presets::tiny_decoder(), presets::opt_125m()] {
        for baseline in Baseline::comparison_set() {
            let engine = baseline.engine(model.clone(), 6.0).unwrap();
            let prefill = engine.prefill_latency(32).unwrap();
            let decode = engine.decode_latency(32, 4).unwrap();
            assert!(prefill.cycles > Cycles::ZERO, "{} {}", model.name, baseline.name());
            assert!(decode.cycles > Cycles::ZERO);
            assert!(decode.cycles < prefill.cycles, "decode must be cheaper than prefill");
        }
    }
}

#[test]
fn report_totals_match_layer_sums() {
    let engine = MeadowEngine::new(EngineConfig::zcu102(presets::tiny_decoder(), 12.0)).unwrap();
    let r = engine.prefill_latency(16).unwrap();
    let layer_sum: Cycles = r.layers.iter().map(|l| l.makespan()).sum();
    assert_eq!(layer_sum, r.cycles);
    assert_eq!(r.layers.len(), 2);
}

#[test]
fn ledger_matches_report_components_for_gemm() {
    // For the sequential GEMM baseline, the ledger's fetch/store cycle
    // attribution must equal the per-op component totals.
    let engine =
        MeadowEngine::new(EngineConfig::gemm_baseline(presets::tiny_decoder(), 12.0)).unwrap();
    let r = engine.prefill_latency(16).unwrap();
    let (f, _, s) = r.components();
    assert_eq!(r.ledger.fetch_cycles(), f);
    assert_eq!(r.ledger.store_cycles(), s);
}

#[test]
fn workload_validation_propagates() {
    let engine = MeadowEngine::new(EngineConfig::zcu102(presets::tiny_decoder(), 12.0)).unwrap();
    assert!(engine.prefill_latency(0).is_err());
    assert!(engine.prefill_latency(10_000).is_err());
    assert!(engine.decode_latency(0, 1).is_err());
    assert!(engine.decode_latency(16, 0).is_err());
    assert!(engine.end_to_end_latency(16, 0).is_err());
}

#[test]
fn packing_stats_are_exposed_and_match_plan() {
    let meadow = MeadowEngine::new(EngineConfig::zcu102(presets::tiny_decoder(), 12.0)).unwrap();
    assert!(meadow.packing_stats().is_some());
    let gemm =
        MeadowEngine::new(EngineConfig::gemm_baseline(presets::tiny_decoder(), 12.0)).unwrap();
    assert!(gemm.packing_stats().is_none());
}

#[test]
fn injected_stats_must_match_plan() {
    let config = EngineConfig::zcu102(presets::tiny_decoder(), 12.0);
    assert!(MeadowEngine::with_packing_stats(config, None).is_err());
    let config = EngineConfig::gemm_baseline(presets::tiny_decoder(), 12.0);
    assert!(MeadowEngine::with_packing_stats(config, None).is_ok());
}

#[test]
fn vit_presets_run_both_plans() {
    for model in [presets::tiny_vit(), presets::deit_s()] {
        let gemm = MeadowEngine::new(EngineConfig::gemm_baseline(model.clone(), 6.0)).unwrap();
        let meadow = MeadowEngine::new(EngineConfig::zcu102(model, 6.0)).unwrap();
        let g = gemm.vit_inference_latency().unwrap();
        let m = meadow.vit_inference_latency().unwrap();
        assert!(m.cycles < g.cycles);
    }
}

#[test]
fn whole_tiny_model_is_lossless_end_to_end() {
    let report =
        verify_model_lossless(&presets::tiny_decoder(), &PackingConfig::default(), usize::MAX)
            .unwrap();
    assert!(report.all_exact, "{:?}", report.failures);
    assert_eq!(report.matrices_checked, 36);
}

#[test]
fn decode_latency_is_stable_across_repeated_measurement() {
    let engine = MeadowEngine::new(EngineConfig::zcu102(presets::tiny_decoder(), 12.0)).unwrap();
    let a = engine.decode_latency(16, 2).unwrap();
    let b = engine.decode_latency(16, 2).unwrap();
    assert_eq!(a, b, "measurement must be deterministic");
}
