//! Invariant/property tier for the weight-residency state machine: cold
//! starts, per-layer weight streaming with prefetch overlap, and
//! multi-model LRU tenancy.
//!
//! The contracts pinned here:
//!
//! * **Degeneracy identities** — leaving the weight budget unset (the
//!   unbounded single-model case: the chip's model is permanently
//!   resident for free) serializes not a single new byte, so every
//!   pre-residency report stays bit-exact; and the overlap formula with
//!   zero-latency loads collapses to the resident compute time.
//! * **Cold ≥ warm** — a cold chip's TTFT dominates the warm identity's
//!   on identical requests, and the streaming-overlap TTFT lands strictly
//!   between warm and the sequential full-load stall.
//! * **Byte conservation** — every weight byte crossing DRAM is exactly
//!   one model load (`loads × model_weight_bytes`), through arbitrary
//!   evict/re-stream churn; eviction itself writes nothing back.
//! * **Event == Tick** — both scheduler cores agree bit-exactly over the
//!   whole residency matrix (models × budgets × streaming × KV policies).
//! * **Overlap formula** — `pipelined_cold_finish` matches a brute-force
//!   two-resource (load channel + compute pipeline) schedule and sits in
//!   `[max(Σload, Σcompute), Σload + Σcompute]`.

mod common;

use common::{requests_from_seed, spread_models};
use meadow::core::cluster::RoundRobin;
use meadow::core::serve::{
    pipelined_cold_finish, serve, KvPolicy, SchedulerCore, ServeConfig, ServeReport,
};
use meadow::core::spec::ServeSpec;
use meadow::core::{EngineConfig, MeadowEngine};
use meadow::models::presets;
use meadow::models::workload::ArrivalTrace;
use meadow::sim::{Cycles, TrafficClass};
use proptest::collection::vec;
use proptest::prelude::*;

fn engine() -> MeadowEngine {
    MeadowEngine::new(EngineConfig::zcu102(presets::tiny_decoder(), 12.0)).unwrap()
}

/// Brute-force reference for the EdgeFlow-style overlap: the load channel
/// streams layers back to back, and layer `l`'s compute starts once both
/// its own load and layer `l-1`'s compute have finished. Independent
/// reimplementation as an explicit event walk over both resources.
fn brute_force_schedule(load: &[u64], compute: &[u64]) -> u64 {
    let layers = load.len().max(compute.len());
    let mut load_channel_free = 0u64;
    let mut compute_free = 0u64;
    for l in 0..layers {
        let load_done = load_channel_free + load.get(l).copied().unwrap_or(0);
        load_channel_free = load_done;
        let start = load_done.max(compute_free);
        compute_free = start + compute.get(l).copied().unwrap_or(0);
    }
    compute_free
}

/// No weight budget is the unbounded single-model identity: the report
/// carries no weight summary, no per-trace cold/warm tags, and its JSON
/// contains no trace of the feature — which is why the four pre-residency
/// goldens stay byte-stable.
#[test]
fn unset_budget_serializes_the_pre_residency_identity() {
    let report =
        serve(&engine(), &ArrivalTrace::uniform(2, 0.0, 16, 4), &ServeConfig::default()).unwrap();
    assert!(report.weights.is_none());
    assert!(report.traces.iter().all(|t| t.cold_start.is_none()));
    let json = report.to_json().unwrap();
    assert!(!json.contains("weights"), "identity JSON must not mention weights");
    assert!(!json.contains("cold_start"), "identity JSON must not tag traces");
    // And a pre-residency report (no such fields at all) still parses.
    let reparsed: ServeReport = serde_json::from_str(&json).unwrap();
    assert_eq!(reparsed, report);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The overlap formula equals the brute-force two-resource schedule
    /// and respects its bounds: at least each pipeline alone, at most
    /// their sum, and exactly the compute pipeline when loads are free
    /// (the streamed-equals-resident degeneracy).
    #[test]
    fn overlap_formula_matches_brute_force_and_bounds(
        load in vec(0u64..2_000, 0..12),
        compute in vec(0u64..2_000, 0..12),
    ) {
        let lc: Vec<Cycles> = load.iter().map(|&c| Cycles(c)).collect();
        let cc: Vec<Cycles> = compute.iter().map(|&c| Cycles(c)).collect();
        let piped = pipelined_cold_finish(&lc, &cc).get();
        prop_assert_eq!(piped, brute_force_schedule(&load, &compute));
        let load_sum: u64 = load.iter().sum();
        let compute_sum: u64 = compute.iter().sum();
        prop_assert!(piped >= load_sum, "pipelined {piped} < load pipeline {load_sum}");
        prop_assert!(piped >= compute_sum, "pipelined {piped} < compute pipeline {compute_sum}");
        prop_assert!(
            piped <= load_sum + compute_sum,
            "pipelined {piped} > sequential {}",
            load_sum + compute_sum
        );
        // Zero-latency loads: streaming is indistinguishable from resident.
        let free: Vec<Cycles> = load.iter().map(|_| Cycles::ZERO).collect();
        prop_assert_eq!(pipelined_cold_finish(&free, &cc).get(), compute_sum);
    }

    /// The cold-start TTFT ladder on one request: warm < streamed cold <
    /// sequential cold, for any request shape. Streaming overlap hides
    /// load latency behind compute without ever beating residency, and
    /// both cold runs move identical weight bytes.
    #[test]
    fn cold_ttft_ladder_is_strict_for_any_request_shape(
        prompt in 1usize..32,
        generate in 1usize..8,
    ) {
        let e = engine();
        let model = presets::tiny_decoder();
        let trace = ArrivalTrace::uniform(1, 0.0, prompt, generate);
        let budget = ServeConfig::default().with_weight_budget(model.total_weight_bytes());
        let warm = serve(&e, &trace, &ServeConfig::default()).unwrap();
        let sequential = serve(&e, &trace, &budget).unwrap();
        let streamed = serve(&e, &trace, &budget.with_weight_streaming(true)).unwrap();
        let (w, s, q) = (
            warm.traces[0].ttft_ms(),
            streamed.traces[0].ttft_ms(),
            sequential.traces[0].ttft_ms(),
        );
        prop_assert!(w < s, "streamed cold {s} must exceed warm {w}");
        prop_assert!(s < q, "streamed cold {s} must undercut sequential cold {q}");
        prop_assert_eq!(
            streamed.ledger.bytes(TrafficClass::Weights),
            sequential.ledger.bytes(TrafficClass::Weights)
        );
    }

    /// Identical requests, one cold chip: the first (cold) session's TTFT
    /// dominates the later warm one's, and the report's per-class
    /// summaries agree with the traces.
    #[test]
    fn cold_ttft_dominates_warm_on_identical_requests(
        prompt in 1usize..32,
        generate in 1usize..8,
        streaming in any::<bool>(),
    ) {
        let model = presets::tiny_decoder();
        // Spaced so the second request prefills alone on a now-warm chip.
        let trace = ArrivalTrace::uniform(2, 10_000.0, prompt, generate);
        let config = ServeConfig::default()
            .with_weight_budget(model.total_weight_bytes())
            .with_weight_streaming(streaming);
        let report = serve(&engine(), &trace, &config).unwrap();
        let weights = report.weights.unwrap();
        prop_assert_eq!(weights.cold_requests, 1);
        prop_assert_eq!(report.traces[0].cold_start, Some(true));
        prop_assert_eq!(report.traces[1].cold_start, Some(false));
        let (cold, warm) = (report.traces[0].ttft_ms(), report.traces[1].ttft_ms());
        prop_assert!(cold > warm, "cold TTFT {cold} must exceed warm TTFT {warm}");
        prop_assert_eq!(weights.cold_ttft.p50_ms, cold);
        prop_assert_eq!(weights.warm_ttft.p50_ms, warm);
    }

    /// Weight-byte conservation through arbitrary evict/re-stream churn:
    /// every DRAM weight byte belongs to exactly one whole-model load,
    /// eviction writes nothing back, and the load/eviction ledger closes
    /// (models still resident = loads − evictions, within the budget).
    #[test]
    fn weight_bytes_are_conserved_through_churn(
        seed in 0u64..1_000,
        n in 2usize..16,
        models in 1u32..4,
        budget_models in 1u64..3,
        streaming in any::<bool>(),
        policy_idx in 0u8..3,
    ) {
        let model = presets::tiny_decoder();
        let trace = spread_models(requests_from_seed(seed, n, 24, 8, 0.5), models);
        let config = ServeConfig::default()
            .with_weight_budget(budget_models * model.total_weight_bytes())
            .with_weight_streaming(streaming)
            .with_policy(match policy_idx % 3 {
                0 => KvPolicy::Fifo,
                1 => KvPolicy::Lru,
                _ => KvPolicy::PagedLru,
            })
            .with_max_batch(2);
        let report = serve(&engine(), &trace, &config).unwrap();
        let weights = report.weights.unwrap();
        prop_assert_eq!(weights.models, models.min(n as u32) as usize);
        prop_assert_eq!(weights.model_weight_bytes, model.total_weight_bytes());
        // Conservation: bytes == loads × model bytes == loads × Σ layers.
        prop_assert_eq!(weights.weight_bytes, weights.weight_loads * model.total_weight_bytes());
        prop_assert_eq!(
            weights.weight_bytes,
            weights.weight_loads * model.layer_weight_bytes() * model.layers as u64
        );
        prop_assert_eq!(report.ledger.bytes(TrafficClass::Weights), weights.weight_bytes);
        // The residency ledger closes: what streamed in and never left is
        // still resident, bounded by the budget; every distinct model
        // loaded at least once.
        let resident = weights.weight_loads - weights.weight_evictions;
        prop_assert!(resident >= 1 && resident <= budget_models);
        prop_assert!(weights.weight_loads >= weights.models as u64);
        // Cold starts are per-session, at most one per request.
        prop_assert!(weights.cold_requests <= n as u64);
    }

    /// Event == Tick bit-exactly over the residency matrix: model counts,
    /// budget pressure, streaming overlap, and KV policies.
    #[test]
    fn cores_agree_over_the_residency_matrix(
        seed in 0u64..1_000,
        n in 1usize..16,
        models in 1u32..4,
        budget_models in 1u64..3,
        streaming in any::<bool>(),
        policy_idx in 0u8..3,
    ) {
        let model = presets::tiny_decoder();
        let engine = engine();
        let trace = spread_models(requests_from_seed(seed, n, 24, 8, 0.5), models);
        let config = ServeConfig::default()
            .with_weight_budget(budget_models * model.total_weight_bytes())
            .with_weight_streaming(streaming)
            .with_policy(match policy_idx % 3 {
                0 => KvPolicy::Fifo,
                1 => KvPolicy::Lru,
                _ => KvPolicy::PagedLru,
            })
            .with_max_batch(4);
        let run = |core| {
            ServeSpec::builder()
                .config(config)
                .scheduler(core)
                .build()
                .unwrap()
                .run(&engine, &trace)
                .unwrap()
                .into_single()
                .unwrap()
        };
        let event = run(SchedulerCore::Event);
        let tick = run(SchedulerCore::Tick);
        prop_assert_eq!(&event, &tick);
        prop_assert_eq!(event.to_json().unwrap(), tick.to_json().unwrap());
    }

    /// The cluster front door carries the residency matrix too: per-chip
    /// reports and the aggregated weight summary agree between cores, and
    /// the aggregate's churn counters are the per-chip sums.
    #[test]
    fn cluster_cores_agree_with_multi_model_weights(
        seed in 0u64..1_000,
        n in 1usize..16,
        chips in 1usize..4,
        models in 1u32..3,
        streaming in any::<bool>(),
    ) {
        let model = presets::tiny_decoder();
        let engine = engine();
        let trace = spread_models(requests_from_seed(seed, n, 24, 8, 0.5), models);
        let config = ServeConfig::default()
            .with_weight_budget(model.total_weight_bytes())
            .with_weight_streaming(streaming)
            .with_max_batch(4);
        let run = |core| {
            ServeSpec::builder()
                .chips(chips)
                .placement(RoundRobin)
                .config(config)
                .scheduler(core)
                .build()
                .unwrap()
                .run(&engine, &trace)
                .unwrap()
                .into_cluster()
                .unwrap()
        };
        let event = run(SchedulerCore::Event);
        let tick = run(SchedulerCore::Tick);
        prop_assert_eq!(&event, &tick);
        let agg = event.weights.expect("budgeted runs aggregate a weight summary");
        let per_chip: Vec<_> =
            event.per_chip.iter().filter_map(|c| c.report.weights).collect();
        prop_assert_eq!(agg.weight_loads, per_chip.iter().map(|w| w.weight_loads).sum::<u64>());
        prop_assert_eq!(
            agg.weight_evictions,
            per_chip.iter().map(|w| w.weight_evictions).sum::<u64>()
        );
        prop_assert_eq!(agg.weight_bytes, per_chip.iter().map(|w| w.weight_bytes).sum::<u64>());
        prop_assert_eq!(
            agg.cold_requests,
            per_chip.iter().map(|w| w.cold_requests).sum::<u64>()
        );
    }
}
