//! Cross-crate substrate checks: the hardware models compose correctly with
//! the numeric references they are supposed to implement.

use meadow::sim::event::{EventSim, TaskKind};
use meadow::sim::pe::{BroadcastingMacPe, ParallelMacPe};
use meadow::sim::softmax_unit::SoftmaxUnit;
use meadow::sim::{ChipConfig, Cycles};
use meadow::tensor::gemm::dot_i8;
use meadow::tensor::softmax::softmax_row_exact;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parallel_pe_computes_exact_dot_products(
        a in proptest::collection::vec(any::<i8>(), 1..256),
        b_seed in any::<u64>(),
    ) {
        let b: Vec<i8> = a.iter().enumerate()
            .map(|(i, _)| ((b_seed >> (i % 56)) & 0xFF) as u8 as i8)
            .collect();
        let pe = ParallelMacPe::default();
        let (acc, cycles) = pe.execute_dot(&a, &b);
        prop_assert_eq!(acc, dot_i8(&a, &b));
        prop_assert_eq!(cycles, Cycles((a.len() as u64).div_ceil(64)));
    }

    #[test]
    fn broadcasting_pe_matches_transposed_dot(
        x in proptest::collection::vec(-20i8..=20, 1..32),
        width in 1usize..16,
    ) {
        let rows: Vec<Vec<i8>> = (0..x.len())
            .map(|i| (0..width).map(|j| ((i * 7 + j * 3) % 25) as i8 - 12).collect())
            .collect();
        let row_refs: Vec<&[i8]> = rows.iter().map(Vec::as_slice).collect();
        let mut out = vec![0i32; width];
        BroadcastingMacPe::default().execute_broadcast(&x, &row_refs, &mut out);
        for (j, &o) in out.iter().enumerate() {
            let col: Vec<i8> = rows.iter().map(|r| r[j]).collect();
            prop_assert_eq!(o, dot_i8(&x, &col));
        }
    }

    #[test]
    fn softmax_unit_tracks_reference(row in proptest::collection::vec(-6.0f32..6.0, 1..64)) {
        let unit = SoftmaxUnit::default();
        let (approx, cycles) = unit.execute_row(&row);
        let exact = softmax_row_exact(&row);
        for (a, e) in approx.iter().zip(&exact) {
            prop_assert!((a - e).abs() < 0.03, "{} vs {}", a, e);
        }
        prop_assert_eq!(cycles, Cycles(3 * row.len() as u64));
    }

    #[test]
    fn event_sim_makespan_bounds(
        durations in proptest::collection::vec(1u64..100, 1..20),
    ) {
        // All tasks on one resource: makespan = sum. Across resources with
        // no deps: makespan = max per-resource sum.
        let mut sim = EventSim::new();
        let r = sim.add_resource("only");
        for &d in &durations {
            sim.submit(r, TaskKind::Compute, Cycles(d), &[]).unwrap();
        }
        prop_assert_eq!(sim.makespan(), Cycles(durations.iter().sum::<u64>()));

        let mut sim = EventSim::new();
        let r1 = sim.add_resource("a");
        let r2 = sim.add_resource("b");
        let mut sums = [0u64, 0];
        for (i, &d) in durations.iter().enumerate() {
            let r = if i % 2 == 0 { r1 } else { r2 };
            sums[i % 2] += d;
            sim.submit(r, TaskKind::Compute, Cycles(d), &[]).unwrap();
        }
        prop_assert_eq!(sim.makespan(), Cycles(sums[0].max(sums[1])));
    }
}

#[test]
fn chip_scaling_preserves_validity() {
    for pes in [2usize, 8, 14, 36, 48, 96, 200] {
        let chip = ChipConfig::zcu102_with_total_pes(pes);
        chip.validate().unwrap_or_else(|e| panic!("{pes} PEs: {e}"));
        assert!(chip.total_pes() >= 2);
    }
}

#[test]
fn dependency_chains_serialize_across_resources() {
    let mut sim = EventSim::new();
    let dma = sim.add_resource("dma");
    let pe = sim.add_resource("pe");
    let mut prev = None;
    let mut expected = 0;
    for i in 0..10u64 {
        let deps: Vec<_> = prev.into_iter().collect();
        let r = if i % 2 == 0 { dma } else { pe };
        let t = sim.submit(r, TaskKind::Compute, Cycles(i + 1), &deps).unwrap();
        expected += i + 1;
        prev = Some(t);
    }
    assert_eq!(sim.makespan(), Cycles(expected));
}
