//! Golden-trace test: a fixed 8-request arrival trace on the ZCU102 config
//! must produce a byte-stable `ServeReport`, so scheduler refactors cannot
//! silently change serving numbers.
//!
//! The whole pipeline is deterministic integer-cycle arithmetic converted
//! to f64 at fixed points, and the vendored serde_json prints floats with
//! Rust's shortest round-trip formatting — so the serialized report is
//! stable down to the byte. To refresh the snapshot after an *intentional*
//! change:
//!
//! ```sh
//! MEADOW_UPDATE_GOLDEN=1 cargo test --test serve_golden
//! ```

use meadow::core::serve::{serve, AdmissionPolicy, KvPolicy, ServeConfig};
use meadow::core::{EngineConfig, MeadowEngine};
use meadow::models::presets;
use meadow::models::workload::{ArrivalTrace, ServeRequest};
use meadow::models::{KvCompression, KvLayout};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

/// The pinned arrival set: 8 staggered requests with ragged
/// prompt/generation lengths; arrival spacing is on the scale of a tick
/// (tens of µs on the tiny model) so sessions genuinely overlap.
fn golden_trace() -> ArrivalTrace {
    ArrivalTrace::new(vec![
        ServeRequest::new(0, 0.0, 16, 8),
        ServeRequest::new(1, 0.0, 24, 4),
        ServeRequest::new(2, 0.01, 8, 6),
        ServeRequest::new(3, 0.015, 31, 2),
        ServeRequest::new(4, 0.02, 4, 8),
        ServeRequest::new(5, 0.03, 12, 5),
        ServeRequest::new(6, 0.05, 20, 3),
        ServeRequest::new(7, 0.08, 6, 7),
    ])
}

/// The whole-cache scenario: a budget sized to force evictions and a batch
/// cap so the scheduler exercises idle-resident sessions.
fn golden_report() -> String {
    let engine = MeadowEngine::new(EngineConfig::zcu102(presets::tiny_decoder(), 12.0)).unwrap();
    let model = presets::tiny_decoder();
    // Room for ~2 peak sessions: admission, eviction and reload all fire.
    let budget = 2 * ServeRequest::new(0, 0.0, 31, 2).peak_kv_bytes(&model);
    let config =
        ServeConfig::default().with_budget(budget).with_policy(KvPolicy::Fifo).with_max_batch(4);
    let report = serve(&engine, &golden_trace(), &config).unwrap();
    assert!(report.total_evictions > 0, "the golden scenario must exercise eviction");
    report.to_json().unwrap() + "\n"
}

/// The paged scenario: same trace under `PagedLru` with small pages, a
/// tighter budget and SLO-aware admission, so page spills, faults,
/// fragmentation accounting and rejection all land in the snapshot.
fn golden_paged_report() -> String {
    let engine = MeadowEngine::new(EngineConfig::zcu102(presets::tiny_decoder(), 12.0)).unwrap();
    let model = presets::tiny_decoder();
    // 1.5 peak sessions of room: page spills, faults, fragmentation and at
    // least one SLO rejection all fire on this trace.
    let budget = 3 * ServeRequest::new(0, 0.0, 31, 2).peak_kv_bytes(&model) / 2;
    let config = ServeConfig::default()
        .with_budget(budget)
        .with_policy(KvPolicy::PagedLru)
        .with_page_bytes(256)
        .with_max_batch(4)
        .with_admission(AdmissionPolicy::RejectAfter { ttft_slo_ms: 0.4 });
    let report = serve(&engine, &golden_trace(), &config).unwrap();
    assert!(report.total_page_spills > 0, "the paged scenario must peel pages");
    assert!(report.rejected_requests > 0, "the paged scenario must shed load");
    report.to_json().unwrap() + "\n"
}

/// The compression scenario: the same trace under a grouped-heads layout
/// *and* VEDA token eviction, with whole-cache LRU and SLO-aware
/// admission — the `kv` summary block (layout, compression, retained
/// attention mass, dense-vs-actual bytes) and the compressed per-trace
/// byte accounting all land in the snapshot.
fn golden_kvcomp_report() -> String {
    let engine = MeadowEngine::new(EngineConfig::zcu102(presets::tiny_decoder(), 12.0)).unwrap();
    let model = presets::tiny_decoder();
    // Compressed sessions are roughly a quarter the dense size (half the
    // KV heads, half the tokens kept), so half a dense peak cache holds
    // about two of them: eviction and reload still churn at the
    // compressed scale.
    let budget = ServeRequest::new(0, 0.0, 31, 2).peak_kv_bytes(&model) / 2;
    let config = ServeConfig::default()
        .with_budget(budget)
        .with_policy(KvPolicy::Lru)
        .with_max_batch(4)
        .with_admission(AdmissionPolicy::RejectAfter { ttft_slo_ms: 0.4 })
        .with_kv_layout(KvLayout::GroupedHeads { kv_heads: 2 })
        .with_kv_compression(KvCompression::VedaVote { keep_ratio: 0.5 });
    let report = serve(&engine, &golden_trace(), &config).unwrap();
    assert!(report.total_evictions > 0, "the compressed scenario must exercise eviction");
    let kv = report.kv.expect("a non-dense run attaches its KV summary");
    assert!(kv.final_kv_bytes < kv.dense_final_kv_bytes, "compression must shrink the snapshot");
    assert!(kv.retained_attention_mass < 1.0);
    report.to_json().unwrap() + "\n"
}

/// The multi-model scenario: the same trace split across 2 models
/// churning under a one-model weight budget with streaming overlap, so
/// cold starts, per-layer load pipelining, LRU model eviction and the
/// cold/warm TTFT split all land in the snapshot.
fn golden_multimodel_report() -> String {
    let engine = MeadowEngine::new(EngineConfig::zcu102(presets::tiny_decoder(), 12.0)).unwrap();
    let model = presets::tiny_decoder();
    let mut trace = golden_trace();
    for (i, r) in trace.requests.iter_mut().enumerate() {
        *r = r.with_model(i as u32 % 2);
    }
    // Room for exactly one model's weights: every model switch evicts the
    // resident model and re-streams the other.
    let config = ServeConfig::default()
        .with_weight_budget(model.total_weight_bytes())
        .with_weight_streaming(true)
        .with_max_batch(4);
    let report = serve(&engine, &trace, &config).unwrap();
    let weights = report.weights.expect("a budgeted run attaches its weight summary");
    assert_eq!(weights.models, 2);
    assert!(weights.weight_evictions > 0, "a one-model budget must churn");
    assert!(weights.cold_requests > 0, "the scenario must exercise cold starts");
    assert!(
        weights.cold_ttft.p50_ms > weights.warm_ttft.p50_ms,
        "cold starts must cost TTFT in the snapshot"
    );
    report.to_json().unwrap() + "\n"
}

fn assert_byte_stable(name: &str, got: String) {
    let path = golden_path(name);
    if std::env::var_os("MEADOW_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &got).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    assert_eq!(
        got, want,
        "ServeReport diverged from the committed snapshot {name}; if the change is \
         intentional, regenerate with MEADOW_UPDATE_GOLDEN=1 cargo test --test serve_golden"
    );
}

#[test]
fn serve_report_is_byte_stable() {
    assert_byte_stable("serve_zcu102.json", golden_report());
}

#[test]
fn paged_serve_report_is_byte_stable() {
    assert_byte_stable("serve_paged_zcu102.json", golden_paged_report());
}

#[test]
fn kvcomp_serve_report_is_byte_stable() {
    assert_byte_stable("serve_kvcomp_zcu102.json", golden_kvcomp_report());
}

#[test]
fn multimodel_serve_report_is_byte_stable() {
    assert_byte_stable("serve_multimodel_zcu102.json", golden_multimodel_report());
}
