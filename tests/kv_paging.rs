//! Property suite for the paged KV-cache allocator: page conservation (no
//! frame is ever leaked or double-owned), pool-capacity safety, sizing
//! arithmetic and LRU victim ordering under arbitrary grow/touch/evict/
//! release sequences.

use meadow::core::kv_pages::KvPageAllocator;
use proptest::collection::vec;
use proptest::prelude::*;

/// One step of a random allocator workout.
#[derive(Debug, Clone, Copy)]
enum Op {
    Grow { session: u32, pages: usize },
    Touch { session: u32, tick: u64 },
    EvictTail { session: u32 },
    EvictLru,
    Release { session: u32 },
}

/// The vendored proptest cannot box heterogeneous strategies, so ops are
/// decoded from a uniform tuple: a selector plus the operand pool.
fn op_strategy(sessions: u32) -> impl Strategy<Value = Op> {
    (0u8..5, 0..sessions, 1usize..5, 0u64..100).prop_map(
        |(kind, session, pages, tick)| match kind {
            0 => Op::Grow { session, pages },
            1 => Op::Touch { session, tick },
            2 => Op::EvictTail { session },
            3 => Op::EvictLru,
            _ => Op::Release { session },
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Page conservation: after any operation sequence, every frame is
    /// either free or in exactly one page table, the pool never exceeds
    /// its capacity, and a grow that the free list cannot cover fails
    /// without corrupting anything.
    #[test]
    fn allocator_conserves_pages(
        total in 1usize..24,
        ops in vec(op_strategy(5), 1..60),
    ) {
        let mut pool = KvPageAllocator::new(total, 64).unwrap();
        for op in ops {
            match op {
                Op::Grow { session, pages } => {
                    let target = pool.session_pages(session) + pages;
                    let fits = pages <= pool.free_pages();
                    let result = pool.grow(session, target, (1, 1, session));
                    prop_assert_eq!(result.is_ok(), fits, "grow must fail iff the pool is short");
                    if fits {
                        prop_assert_eq!(result.unwrap(), pages);
                        prop_assert_eq!(pool.session_pages(session), target);
                    }
                }
                Op::Touch { session, tick } => pool.touch(session, (tick, 1, session)),
                Op::EvictTail { session } => {
                    let held = pool.session_pages(session);
                    let evicted = pool.evict_tail(session);
                    prop_assert_eq!(evicted.is_some(), held > 0);
                    prop_assert_eq!(pool.session_pages(session), held.saturating_sub(1));
                }
                Op::EvictLru => {
                    if let Some((page, owner)) = pool.lru_page(|_| true) {
                        prop_assert_eq!(pool.evict_tail(owner), Some(page));
                    }
                }
                Op::Release { session } => {
                    let held = pool.session_pages(session);
                    prop_assert_eq!(pool.release(session), held);
                    prop_assert_eq!(pool.session_pages(session), 0);
                }
            }
            prop_assert!(pool.conserves_pages(), "conservation violated after {:?}", op);
            prop_assert!(pool.used_pages() + pool.free_pages() == pool.total_pages());
        }
    }

    /// The page budget is a hard cap: a session can never grow the pool
    /// past its capacity, however the demand is split across sessions.
    #[test]
    fn pool_capacity_is_never_exceeded(
        total in 1usize..16,
        demands in vec((0u32..6, 1usize..8), 1..12),
    ) {
        let mut pool = KvPageAllocator::new(total, 32).unwrap();
        for (session, pages) in demands {
            let target = pool.session_pages(session) + pages;
            let _ = pool.grow(session, target, (1, 1, session));
            prop_assert!(pool.used_pages() <= total);
            prop_assert!(pool.conserves_pages());
        }
    }

    /// Sizing arithmetic: `pages_for` is exact ceil division, and a
    /// session holding `bytes` wastes less than one page of frame space.
    #[test]
    fn pages_for_is_ceil_division(bytes in 0u64..100_000, page in 1u64..5000) {
        let pool = KvPageAllocator::new(4, page).unwrap();
        let pages = pool.pages_for(bytes) as u64;
        prop_assert!(pages * page >= bytes);
        prop_assert!(pages * page < bytes + page, "over-allocated: {} pages of {}", pages, page);
    }

    /// LRU ordering: the victim page always belongs to the session with
    /// the minimal touch key among the candidates.
    #[test]
    fn lru_victim_is_the_stalest_candidate(
        ticks in vec(0u64..50, 2..6),
    ) {
        let mut pool = KvPageAllocator::new(32, 16).unwrap();
        for (i, &tick) in ticks.iter().enumerate() {
            let s = i as u32;
            pool.grow(s, 2, (tick, i as u64, s)).unwrap();
        }
        let (_, owner) = pool.lru_page(|_| true).unwrap();
        let min = (0..ticks.len())
            .min_by_key(|&i| (ticks[i], i))
            .unwrap() as u32;
        prop_assert_eq!(owner, min);
    }
}

/// Whole-pool exhaustion reporting: the error names the shortfall and the
/// failed grow leaves prior ownership intact.
#[test]
fn exhaustion_error_is_clean() {
    let mut pool = KvPageAllocator::new(3, 64).unwrap();
    pool.grow(1, 2, (1, 1, 1)).unwrap();
    let err = pool.grow(2, 2, (1, 2, 2)).unwrap_err();
    assert!(err.to_string().contains("pages"), "unhelpful error: {err}");
    assert_eq!(pool.session_pages(1), 2);
    assert_eq!(pool.session_pages(2), 0);
    assert_eq!(pool.free_pages(), 1);
    assert!(pool.conserves_pages());
}
