//! Property suite for the capacity planner: the returned fleet meets the
//! SLO and the fleet-minus-one probe misses it (minimality by
//! construction), p95 TTFT never worsens as chips are added on uniform
//! open-budget workloads (the monotonicity the binary search leans on),
//! plans are deterministic, and the probe ladder is internally
//! consistent with the plan it justifies.

mod common;

use common::requests_from_seed;
use meadow::core::capacity::{CapacityPlanner, PaletteMix, SloTarget};
use meadow::core::cluster::LeastLoadedWeighted;
use meadow::core::serve::ServeConfig;
use meadow::core::spec::ServeSpec;
use meadow::core::{CoreError, EngineConfig, MeadowEngine, ServeError};
use meadow::models::presets;
use meadow::models::workload::ArrivalTrace;
use proptest::prelude::*;

fn big() -> EngineConfig {
    EngineConfig::zcu102(presets::tiny_decoder(), 12.0)
}

fn little() -> EngineConfig {
    EngineConfig::zcu102_little(presets::tiny_decoder(), 6.0)
}

/// p95 TTFT of one probe-equivalent simulation: `chips` chips of `mix`
/// under weighted placement — exactly what the planner measures.
fn probe_p95(mix: &PaletteMix, chips: usize, trace: &ArrivalTrace) -> f64 {
    let fleet = mix.fleet_of(chips);
    let engine = MeadowEngine::new(fleet[0].clone()).unwrap();
    let report = ServeSpec::builder()
        .chip_specs(fleet)
        .config(ServeConfig::default().with_max_batch(2))
        .placement(LeastLoadedWeighted)
        .build()
        .unwrap()
        .run(&engine, trace)
        .unwrap()
        .into_cluster()
        .unwrap();
    let mut ttfts: Vec<f64> = report
        .per_chip
        .iter()
        .flat_map(|c| c.report.traces.iter())
        .filter(|t| !t.rejected)
        .map(|t| t.ttft_ms())
        .collect();
    ttfts.sort_by(f64::total_cmp);
    meadow::core::serve::LatencySummary::from_samples(ttfts).p95_ms
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The minimality contract: the plan's fleet meets the SLO, the
    /// `chips − 1` fleet misses it, and both facts are recorded on the
    /// probe ladder the report carries.
    #[test]
    fn returned_fleet_meets_the_slo_and_one_less_misses(
        seed in 0u64..300,
        n in 8usize..20,
        mixed in any::<bool>(),
        slo_scale in 1u32..12,
    ) {
        let trace = requests_from_seed(seed, n, 24, 8, 0.05);
        // SLO points spread from near-infeasible to trivially loose; skip
        // the genuinely infeasible draws (typed-error coverage lives in
        // serve_errors.rs).
        let slo_ms = f64::from(slo_scale) * 0.2;
        let mix = if mixed {
            PaletteMix::new("big-little", vec![big(), little()])
        } else {
            PaletteMix::new("big", vec![big()])
        };
        let slo = SloTarget { p95_ttft_ms: slo_ms, max_rejected_fraction: None };
        let planner = CapacityPlanner::new(ServeConfig::default().with_max_batch(2), slo)
            .max_chips(8);
        let plan = match planner.plan(&trace, std::slice::from_ref(&mix)) {
            Ok(plan) => plan,
            Err(CoreError::Serve(ServeError::InfeasibleSlo { .. })) => return Ok(()),
            Err(other) => return Err(TestCaseError::fail(format!("unexpected error {other}"))),
        };
        let result = &plan.plans[0];
        prop_assert!(result.chips >= 1 && result.chips <= 8);
        prop_assert!(result.p95_ttft_ms <= slo_ms);
        prop_assert!(result.slo_margin_ms >= 0.0);
        prop_assert_eq!(result.fleet.len(), result.chips);
        let chosen = result.probes.iter().find(|p| p.chips == result.chips).unwrap();
        prop_assert!(chosen.meets_slo);
        prop_assert_eq!(chosen.p95_ttft_ms, result.p95_ttft_ms);
        if result.chips > 1 {
            let below = result.probes.iter().find(|p| p.chips == result.chips - 1).unwrap();
            prop_assert!(!below.meets_slo, "fleet-minus-one must miss the SLO");
        }
        // The ladder is sorted and every probe agrees with a direct
        // re-simulation of the same fleet.
        for pair in result.probes.windows(2) {
            prop_assert!(pair[0].chips < pair[1].chips);
        }
        for probe in &result.probes {
            prop_assert_eq!(probe.p95_ttft_ms, probe_p95(&mix, probe.chips, &trace));
        }
    }

    /// Monotonicity on uniform open-budget workloads over a homogeneous
    /// palette: adding chips never worsens p95 TTFT (every chip serves an
    /// equal-shaped shard of a smaller backlog). Mixed palettes are
    /// deliberately excluded — a request re-routed onto a LITTLE chip can
    /// raise p95 even as total capacity grows, which is exactly why the
    /// planner verifies its boundary by direct probes instead of trusting
    /// monotonicity.
    #[test]
    fn more_chips_never_worsen_p95_on_uniform_workloads(
        n in 6usize..20,
        big_bandwidth in 6u32..16,
    ) {
        let trace = ArrivalTrace::uniform(n, 0.0, 20, 6);
        let mix = PaletteMix::new(
            "big",
            vec![EngineConfig::zcu102(presets::tiny_decoder(), f64::from(big_bandwidth))],
        );
        let mut last = f64::INFINITY;
        for chips in 1..=6 {
            let p95 = probe_p95(&mix, chips, &trace);
            prop_assert!(
                p95 <= last + 1e-9,
                "p95 worsened from {} to {} at {} chips",
                last,
                p95,
                chips
            );
            last = p95;
        }
    }

    /// Plans are deterministic: planning twice yields identical reports,
    /// bytes included.
    #[test]
    fn plans_are_deterministic(seed in 0u64..300, n in 4usize..12) {
        let trace = requests_from_seed(seed, n, 24, 8, 0.1);
        let slo = SloTarget { p95_ttft_ms: 5.0, max_rejected_fraction: Some(0.5) };
        let planner = CapacityPlanner::new(ServeConfig::default(), slo).max_chips(6);
        let mixes = [PaletteMix::new("big", vec![big()])];
        let a = planner.plan(&trace, &mixes);
        let b = planner.plan(&trace, &mixes);
        match (a, b) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(&a, &b);
                prop_assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());
            }
            (Err(CoreError::Serve(a)), Err(CoreError::Serve(b))) => {
                prop_assert_eq!(a.to_string(), b.to_string());
            }
            (a, b) => {
                return Err(TestCaseError::fail(format!("outcomes diverged: {a:?} vs {b:?}")));
            }
        }
    }
}
