//! Property suite for prefill/decode disaggregation and speculative
//! decoding: the `Colocated` degeneracy (a disaggregated run under the
//! default phase placement reproduces `Cluster::serve` bit-exactly),
//! token-for-token service equality of split vs colocated serving,
//! acceptance-1.0 speculation bit-identity, exact KV-handoff byte
//! conservation, and `MEADOW_THREADS` bit-identity of the `DisaggReport`.

mod common;

use common::requests_from_seed;
use meadow::core::cluster::{
    Cluster, ClusterConfig, Colocated, LeastLoadedKv, PrefillDecodeSplit, RoundRobin,
    SessionAffinity,
};
use meadow::core::serve::{KvPolicy, ServeConfig, SpecDecode};
use meadow::core::{EngineConfig, MeadowEngine};
use meadow::models::presets;
use meadow::models::workload::ArrivalTrace;
use meadow::sim::noc::NocConfig;
use meadow::tensor::parallel::ExecConfig;
use proptest::prelude::*;

fn engine() -> MeadowEngine {
    MeadowEngine::new(EngineConfig::zcu102(presets::tiny_decoder(), 12.0)).unwrap()
}

/// Up to 5 requests with ragged lengths and staggered arrivals.
fn staggered_trace(seed: u64, n: usize) -> ArrivalTrace {
    requests_from_seed(seed, n, 24, 8, 0.5)
}

/// A budget between "largest single request" and "everything at once".
fn contended_budget(trace: &ArrivalTrace) -> u64 {
    let model = presets::tiny_decoder();
    let single_max = trace.requests.iter().map(|r| r.peak_kv_bytes(&model)).max().unwrap();
    single_max + (trace.total_peak_kv_bytes(&model) - single_max) / 4
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Acceptance criterion: under the default `Colocated` phase
    /// placement, `serve_disaggregated` degenerates to `Cluster::serve`
    /// bit-exactly — the prefill stage carries the identical report (and
    /// serialized bytes), no decode stage exists, and no handoff traffic
    /// ever touches the NoC.
    #[test]
    fn colocated_disagg_reproduces_serve_bit_exactly(
        seed in 0u64..500,
        n in 1usize..6,
        chips in 1usize..4,
        placement_idx in 0u8..3,
        paged in any::<bool>(),
    ) {
        let trace = staggered_trace(seed, n);
        let mut serve_config = ServeConfig::default()
            .with_budget(contended_budget(&trace))
            .with_max_batch(2);
        if paged {
            serve_config = serve_config.with_policy(KvPolicy::PagedLru).with_page_bytes(256);
        }
        let build = || {
            let builder = ClusterConfig::builder()
                .chips(chips)
                .serve(serve_config)
                .phase_placement(Colocated);
            match placement_idx % 3 {
                0 => builder.placement(RoundRobin),
                1 => builder.placement(LeastLoadedKv),
                _ => builder.placement(SessionAffinity),
            }
            .build()
            .unwrap()
        };
        let baseline = Cluster::new(engine(), build()).serve(&trace).unwrap();
        let disagg = Cluster::new(engine(), build()).serve_disaggregated(&trace).unwrap();
        prop_assert_eq!(&disagg.prefill_stage, &baseline);
        prop_assert_eq!(
            disagg.prefill_stage.to_json().unwrap(),
            baseline.to_json().unwrap()
        );
        prop_assert!(disagg.decode_stage.is_none());
        prop_assert_eq!(disagg.split_requests, 0);
        prop_assert_eq!(disagg.handoff.split_requests, 0);
        prop_assert_eq!(disagg.handoff.handoff_bytes, 0);
        prop_assert_eq!(disagg.handoff.noc_link_bytes, 0);
        prop_assert_eq!(disagg.total_generated_tokens, baseline.total_generated_tokens);
        prop_assert_eq!(disagg.makespan_ms, baseline.makespan_ms);
    }

    /// Token-for-token service equality: with unbounded budgets (no
    /// eviction, no reload stalls) every request's own prefill latency and
    /// per-token decode latencies are bit-equal between a colocated run
    /// and a disaggregated split — the handoff moves the work, it never
    /// changes it.
    #[test]
    fn split_serving_matches_colocated_token_for_token(
        seed in 0u64..500,
        n in 1usize..6,
        decode_chips in 1usize..3,
    ) {
        let trace = staggered_trace(seed, n);
        let chips = 1 + decode_chips;
        let colocated = Cluster::new(
            engine(),
            ClusterConfig::builder().chips(chips).build().unwrap(),
        )
        .serve(&trace)
        .unwrap();
        let split = Cluster::new(
            engine(),
            ClusterConfig::builder()
                .chips(chips)
                .phase_placement(PrefillDecodeSplit { prefill_chips: 1 })
                .build()
                .unwrap(),
        )
        .serve_disaggregated(&trace)
        .unwrap();
        prop_assert_eq!(split.split_requests as usize, n);
        let decode_stage = split.decode_stage.as_ref().unwrap();
        for req in &trace.requests {
            let base = colocated.trace(req.id).unwrap();
            let pre = split.prefill_stage.trace(req.id).unwrap();
            let dec = decode_stage.trace(req.id).unwrap();
            prop_assert_eq!(pre.prefill_ms, base.prefill_ms, "request {}", req.id);
            prop_assert_eq!(pre.generated_tokens, 0);
            prop_assert_eq!(&dec.tbt_ms, &base.tbt_ms, "request {}", req.id);
            prop_assert_eq!(dec.generated_tokens, req.generate_tokens);
        }
    }

    /// Absolute-clock check for a solo request on an (effectively) free
    /// NoC: the split run finishes exactly one handoff later than the
    /// colocated run — no hidden cost appears or disappears at the phase
    /// boundary. (Exactly zero handoff is impossible: a non-empty
    /// transfer always costs at least one link cycle.)
    #[test]
    fn solo_split_finish_is_colocated_finish_plus_handoff(
        seed in 0u64..500,
    ) {
        let trace = staggered_trace(seed, 1);
        let fast_noc = NocConfig { link_bytes_per_cycle: u64::MAX, links: 196 };
        let colocated = Cluster::new(
            engine(),
            ClusterConfig::builder().chips(2).noc(fast_noc).build().unwrap(),
        )
        .serve(&trace)
        .unwrap();
        let split = Cluster::new(
            engine(),
            ClusterConfig::builder()
                .chips(2)
                .noc(fast_noc)
                .phase_placement(PrefillDecodeSplit { prefill_chips: 1 })
                .build()
                .unwrap(),
        )
        .serve_disaggregated(&trace)
        .unwrap();
        let id = trace.requests[0].id;
        let base = colocated.trace(id).unwrap();
        let s = split.summary(id).unwrap();
        prop_assert!(s.handoff_ms > 0.0, "a non-empty transfer costs at least one cycle");
        let drift = (s.finish_ms - s.handoff_ms - base.finish_ms).abs();
        prop_assert!(
            drift < 1e-9,
            "split finish {} != colocated finish {} + handoff {}",
            s.finish_ms,
            base.finish_ms,
            s.handoff_ms
        );
        prop_assert_eq!(s.ttft_ms, base.ttft_ms());
    }

    /// Acceptance criterion: speculative decoding with acceptance 1.0
    /// never flushes a draft, so the whole cluster run — report and
    /// serialized bytes — is bit-identical to the baseline decode loop.
    #[test]
    fn full_acceptance_speculation_is_bit_identical(
        seed in 0u64..500,
        n in 1usize..6,
        chips in 1usize..4,
        draft_len in 1usize..16,
    ) {
        let trace = staggered_trace(seed, n);
        let build = |spec: Option<SpecDecode>| {
            let mut serve_config = ServeConfig::default()
                .with_budget(contended_budget(&trace))
                .with_policy(KvPolicy::PagedLru)
                .with_page_bytes(256);
            if let Some(spec) = spec {
                serve_config = serve_config.with_speculation(spec);
            }
            ClusterConfig::builder()
                .chips(chips)
                .serve(serve_config)
                .placement(LeastLoadedKv)
                .build()
                .unwrap()
        };
        let spec = SpecDecode { draft_len, acceptance: 1.0, draft_cost_ratio: 0.5 };
        let baseline = Cluster::new(engine(), build(None)).serve(&trace).unwrap();
        let accepted = Cluster::new(engine(), build(Some(spec))).serve(&trace).unwrap();
        prop_assert_eq!(&accepted, &baseline);
        prop_assert_eq!(accepted.to_json().unwrap(), baseline.to_json().unwrap());
    }

    /// Exact handoff conservation: the payload bytes equal the sum of the
    /// split requests' prompt KV (each handed off exactly once), and the
    /// link-level bytes equal payload × hop distance, request by request.
    #[test]
    fn handoff_bytes_conserve_exactly(
        seed in 0u64..500,
        n in 1usize..6,
        prefill_chips in 1usize..3,
        decode_chips in 1usize..3,
    ) {
        let model = presets::tiny_decoder();
        let trace = staggered_trace(seed, n);
        let config = ClusterConfig::builder()
            .chips(prefill_chips + decode_chips)
            .phase_placement(PrefillDecodeSplit { prefill_chips })
            .build()
            .unwrap();
        let report = Cluster::new(engine(), config).serve_disaggregated(&trace).unwrap();
        // Queue admission (the default) never rejects: every request
        // splits and hands off.
        prop_assert_eq!(report.split_requests as usize, n);
        prop_assert_eq!(report.handoff.split_requests as usize, n);
        let mut payload = 0u64;
        let mut link = 0u64;
        for req in &trace.requests {
            let s = report.summary(req.id).unwrap();
            prop_assert!(s.prefill_chip < prefill_chips);
            prop_assert!(s.decode_chip >= prefill_chips);
            let bytes = req.prompt_kv_bytes(&model);
            payload += bytes;
            link += bytes * (s.decode_chip - s.prefill_chip) as u64;
        }
        prop_assert_eq!(report.handoff.handoff_bytes, payload);
        prop_assert_eq!(report.handoff.noc_link_bytes, link);
        prop_assert_eq!(report.total_generated_tokens,
            trace.requests.iter().map(|r| r.generate_tokens as u64).sum::<u64>());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Acceptance criterion: the `DisaggReport` — including its
    /// serialized bytes — is bit-identical across `MEADOW_THREADS`.
    #[test]
    fn disagg_report_is_bit_identical_across_threads(
        seed in 0u64..200,
        n in 1usize..5,
        decode_chips in 1usize..3,
        speculate in any::<bool>(),
    ) {
        let trace = staggered_trace(seed, n);
        let build = |threads: usize| {
            let e = MeadowEngine::new(
                EngineConfig::zcu102(presets::tiny_decoder(), 12.0)
                    .with_exec(ExecConfig::with_threads(threads)),
            )
            .unwrap();
            let mut serve_config = ServeConfig::default();
            if speculate {
                serve_config = serve_config.with_speculation(SpecDecode {
                    draft_len: 4,
                    acceptance: 0.6,
                    draft_cost_ratio: 0.5,
                });
            }
            let config = ClusterConfig::builder()
                .chips(1 + decode_chips)
                .serve(serve_config)
                .phase_placement(PrefillDecodeSplit { prefill_chips: 1 })
                .build()
                .unwrap();
            Cluster::new(e, config)
        };
        let reference = build(1).serve_disaggregated(&trace).unwrap();
        for threads in [2usize, 4, 8] {
            let report = build(threads).serve_disaggregated(&trace).unwrap();
            prop_assert_eq!(&report, &reference, "threads {}", threads);
            prop_assert_eq!(
                report.to_json().unwrap(),
                reference.to_json().unwrap(),
                "serialized bytes, threads {}",
                threads
            );
        }
    }
}
