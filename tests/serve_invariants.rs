//! Property suite for the multi-session serving simulator: conservation,
//! KV-budget safety, eviction accounting, paging invariants (budget
//! safety at page granularity, whole-cache degeneracy, traffic ordering)
//! and the solo-equivalence contract (an unbounded budget reproduces
//! exactly the per-token latencies of independent `InferenceSession`s).

mod common;

use common::requests_from_seed as seeded;
use meadow::core::serve::{serve, AdmissionPolicy, KvPolicy, ServeConfig};
use meadow::core::session::InferenceSession;
use meadow::core::{EngineConfig, MeadowEngine};
use meadow::models::presets;
use meadow::models::workload::{ArrivalTrace, ServeRequest};
use meadow::sim::TrafficClass;
use proptest::prelude::*;

fn engine() -> MeadowEngine {
    MeadowEngine::new(EngineConfig::zcu102(presets::tiny_decoder(), 12.0)).unwrap()
}

/// Up to 5 requests with ragged prompts/generation lengths and staggered
/// arrivals.
fn requests_from_seed(seed: u64, n: usize) -> ArrivalTrace {
    seeded(seed, n, 24, 8, 0.5)
}

fn policy_from(idx: u8) -> KvPolicy {
    match idx % 3 {
        0 => KvPolicy::Fifo,
        1 => KvPolicy::Lru,
        _ => KvPolicy::PagedLru,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: every request finishes exactly once with exactly the
    /// requested number of tokens, under any policy (whole-cache or paged)
    /// and a safe budget.
    #[test]
    fn tokens_are_conserved(seed in 0u64..1000, n in 1usize..6, policy_idx in 0u8..3) {
        let model = presets::tiny_decoder();
        let trace = requests_from_seed(seed, n);
        // A budget between "largest single request" and "everything at
        // once" exercises admission without making any request unservable.
        let single_max =
            trace.requests.iter().map(|r| r.peak_kv_bytes(&model)).max().unwrap();
        let budget = single_max + (trace.total_peak_kv_bytes(&model) - single_max) / 2;
        let config = ServeConfig::default()
            .with_budget(budget)
            .with_policy(policy_from(policy_idx))
            .with_page_bytes(256);
        let report = serve(&engine(), &trace, &config).unwrap();
        prop_assert_eq!(report.requests, n);
        prop_assert_eq!(report.traces.len(), n);
        for (req, t) in trace.requests.iter().zip(&report.traces) {
            prop_assert_eq!(t.id, req.id);
            prop_assert_eq!(t.generated_tokens, req.generate_tokens);
            prop_assert_eq!(t.tbt_ms.len(), req.generate_tokens);
            prop_assert!(t.finish_ms >= t.first_token_ms);
            prop_assert!(t.first_token_ms >= req.arrival_ms);
            prop_assert!(t.queue_wait_ms >= 0.0);
        }
        let total: u64 = trace.requests.iter().map(|r| r.generate_tokens as u64).sum();
        prop_assert_eq!(report.total_generated_tokens, total);
    }

    /// The KV budget is never exceeded at any step (the report's peak is
    /// the max over every tick's residency), for whole-cache and paged
    /// policies alike — paged residency counts reserved page frames, not
    /// just loaded data.
    #[test]
    fn kv_budget_is_never_exceeded(seed in 0u64..1000, n in 1usize..6, policy_idx in 0u8..3) {
        let model = presets::tiny_decoder();
        let trace = requests_from_seed(seed, n);
        let single_max =
            trace.requests.iter().map(|r| r.peak_kv_bytes(&model)).max().unwrap();
        let config = ServeConfig::default()
            .with_budget(single_max)
            .with_policy(policy_from(policy_idx))
            .with_page_bytes(128);
        let report = serve(&engine(), &trace, &config).unwrap();
        prop_assert!(
            report.peak_kv_bytes <= single_max,
            "peak {} exceeds budget {}",
            report.peak_kv_bytes,
            single_max
        );
    }

    /// No eviction can occur when the budget fits every session's peak
    /// simultaneously, and the KvCache migration ledger stays empty.
    #[test]
    fn fitting_budget_never_evicts(seed in 0u64..1000, n in 1usize..6, policy_idx in 0u8..3) {
        let model = presets::tiny_decoder();
        let trace = requests_from_seed(seed, n);
        let config = ServeConfig::default()
            .with_budget(trace.total_peak_kv_bytes(&model))
            .with_policy(policy_from(policy_idx))
            .with_page_bytes(256);
        let report = serve(&engine(), &trace, &config).unwrap();
        prop_assert_eq!(report.total_evictions, 0);
        prop_assert_eq!(report.total_page_spills, 0);
        prop_assert_eq!(report.total_page_faults, 0);
        prop_assert_eq!(report.ledger.bytes(TrafficClass::KvCache), 0);
        prop_assert!(report.traces.iter().all(|t| t.evictions == 0));
    }

    /// Whole-cache degeneracy: with `page_bytes` covering every session's
    /// peak cache, `PagedLru` reproduces whole-cache `Lru` bit-exactly —
    /// same traces, same ledger, same makespan, same evictions (PR 3's
    /// spill behavior is the one-page-per-session special case of paging).
    #[test]
    fn paged_with_whole_cache_pages_matches_lru_exactly(
        seed in 0u64..1000,
        n in 1usize..6,
        cap in prop_oneof![Just(2usize), Just(3), Just(usize::MAX)],
    ) {
        let model = presets::tiny_decoder();
        let trace = requests_from_seed(seed, n);
        let single_max =
            trace.requests.iter().map(|r| r.peak_kv_bytes(&model)).max().unwrap();
        let base = ServeConfig::default().with_budget(single_max).with_max_batch(cap);
        let e = engine();
        let lru = serve(&e, &trace, &base.with_policy(KvPolicy::Lru)).unwrap();
        let paged = serve(
            &e,
            &trace,
            &base.with_policy(KvPolicy::PagedLru).with_page_bytes(single_max),
        )
        .unwrap();
        prop_assert_eq!(&paged.traces, &lru.traces);
        prop_assert_eq!(&paged.ledger, &lru.ledger);
        prop_assert_eq!(paged.total_evictions, lru.total_evictions);
        prop_assert_eq!(paged.peak_kv_bytes, lru.peak_kv_bytes);
        prop_assert_eq!(paged.makespan_ms, lru.makespan_ms);
        prop_assert_eq!(paged.ticks, lru.ticks);
        prop_assert_eq!(paged.p50_latency_ms, lru.p50_latency_ms);
        prop_assert_eq!(paged.p95_latency_ms, lru.p95_latency_ms);
    }

    /// Load shedding conserves what it keeps: rejected + completed spans
    /// the whole trace, rejected requests generate nothing, and completed
    /// ones still get their full token count.
    #[test]
    fn rejection_partitions_the_trace(
        seed in 0u64..1000,
        n in 1usize..6,
        slo_us in 1u64..2000,
        policy_idx in 0u8..3,
    ) {
        let model = presets::tiny_decoder();
        let trace = requests_from_seed(seed, n);
        let single_max =
            trace.requests.iter().map(|r| r.peak_kv_bytes(&model)).max().unwrap();
        let config = ServeConfig::default()
            .with_budget(single_max)
            .with_policy(policy_from(policy_idx))
            .with_page_bytes(256)
            .with_admission(AdmissionPolicy::RejectAfter {
                ttft_slo_ms: slo_us as f64 / 1e3,
            });
        let report = serve(&engine(), &trace, &config).unwrap();
        let rejected = report.traces.iter().filter(|t| t.rejected).count();
        prop_assert_eq!(rejected as u64, report.rejected_requests);
        let mut expected = 0u64;
        for (req, t) in trace.requests.iter().zip(&report.traces) {
            if t.rejected {
                prop_assert_eq!(t.generated_tokens, 0);
                prop_assert!(t.tbt_ms.is_empty());
                prop_assert_eq!(t.final_kv_bytes, 0);
            } else {
                prop_assert_eq!(t.generated_tokens, req.generate_tokens);
                expected += req.generate_tokens as u64;
            }
        }
        prop_assert_eq!(report.total_generated_tokens, expected);
    }

    /// FIFO and LRU are policies over *placement*, not *work*: both must
    /// serve every request to completion with identical token counts.
    #[test]
    fn fifo_and_lru_generate_identical_token_counts(seed in 0u64..1000, n in 2usize..6) {
        let model = presets::tiny_decoder();
        let trace = requests_from_seed(seed, n);
        let single_max =
            trace.requests.iter().map(|r| r.peak_kv_bytes(&model)).max().unwrap();
        let base = ServeConfig::default().with_budget(single_max).with_max_batch(2);
        let e = engine();
        let fifo = serve(&e, &trace, &base.with_policy(KvPolicy::Fifo)).unwrap();
        let lru = serve(&e, &trace, &base.with_policy(KvPolicy::Lru)).unwrap();
        prop_assert_eq!(fifo.total_generated_tokens, lru.total_generated_tokens);
        for (f, l) in fifo.traces.iter().zip(&lru.traces) {
            prop_assert_eq!(f.generated_tokens, l.generated_tokens);
        }
    }
}

/// Acceptance criterion: a budget smaller than total demand completes all
/// requests with at least one eviction.
#[test]
fn constrained_budget_completes_with_evictions() {
    let model = presets::tiny_decoder();
    let trace = ArrivalTrace::uniform(4, 0.0, 16, 8);
    let single = ServeRequest::new(0, 0.0, 16, 8).peak_kv_bytes(&model);
    assert!(2 * single < trace.total_peak_kv_bytes(&model));
    for policy in [KvPolicy::Fifo, KvPolicy::Lru] {
        let config = ServeConfig::default().with_budget(2 * single).with_policy(policy);
        let report = serve(&engine(), &trace, &config).unwrap();
        assert_eq!(report.total_generated_tokens, 32, "{policy:?}");
        assert!(report.total_evictions > 0, "{policy:?} must evict under pressure");
        assert!(report.peak_kv_bytes <= 2 * single);
        assert!(report.ledger.bytes(TrafficClass::KvCache) > 0);
    }
}

/// Cross-case the matrix never pinned deterministically: `PagedLru`
/// eviction *and* `RejectAfter` shedding firing on the same run. Page
/// spills must not wedge admission into rejecting everything, rejection
/// must not leak zombie pages into the budget accounting, and the
/// served/shed partition must still conserve tokens.
#[test]
fn paged_lru_with_slo_rejection_evicts_and_partitions() {
    let model = presets::tiny_decoder();
    let trace = ArrivalTrace::new(vec![
        ServeRequest::new(0, 0.0, 16, 8),
        ServeRequest::new(1, 0.0, 24, 4),
        ServeRequest::new(2, 0.01, 8, 6),
        ServeRequest::new(3, 0.015, 31, 2),
        ServeRequest::new(4, 0.02, 4, 8),
        ServeRequest::new(5, 0.03, 12, 5),
        ServeRequest::new(6, 0.05, 20, 3),
        ServeRequest::new(7, 0.08, 6, 7),
    ]);
    // 1.5 peak sessions of room and a sub-millisecond SLO: evictions,
    // page spills and rejections all fire on this trace.
    let budget = 3 * ServeRequest::new(0, 0.0, 31, 2).peak_kv_bytes(&model) / 2;
    let config = ServeConfig::default()
        .with_budget(budget)
        .with_policy(KvPolicy::PagedLru)
        .with_page_bytes(256)
        .with_max_batch(4)
        .with_admission(AdmissionPolicy::RejectAfter { ttft_slo_ms: 0.4 });
    let report = serve(&engine(), &trace, &config).unwrap();
    assert!(report.total_evictions > 0, "the cross-case must evict");
    assert!(report.total_page_spills > 0, "the cross-case must peel pages");
    assert!(report.rejected_requests > 0, "the cross-case must shed load");
    assert!(
        (report.rejected_requests as usize) < trace.requests.len(),
        "the cross-case must also serve"
    );
    assert!(report.peak_kv_bytes <= budget);
    let mut expected = 0u64;
    for (req, t) in trace.requests.iter().zip(&report.traces) {
        if t.rejected {
            assert_eq!(t.generated_tokens, 0);
            assert_eq!(t.final_kv_bytes, 0);
        } else {
            assert_eq!(t.generated_tokens, req.generate_tokens);
            expected += req.generate_tokens as u64;
        }
    }
    assert_eq!(report.total_generated_tokens, expected);
}

/// Acceptance criterion: with an unbounded budget, every request's prefill
/// and per-token service latencies are bit-identical to an independent
/// `InferenceSession` walking the same request on the same engine.
#[test]
fn unbounded_budget_matches_independent_sessions() {
    let e = engine();
    let trace = ArrivalTrace::new(vec![
        ServeRequest::new(0, 0.0, 16, 8),
        ServeRequest::new(1, 0.0, 7, 5),
        ServeRequest::new(2, 2.0, 31, 3),
        ServeRequest::new(3, 2.0, 1, 6),
    ]);
    for policy in [KvPolicy::Fifo, KvPolicy::Lru, KvPolicy::PagedLru] {
        let config = ServeConfig::unbounded().with_policy(policy).with_page_bytes(256);
        let report = serve(&e, &trace, &config).unwrap();
        assert_eq!(report.total_evictions, 0, "{policy:?}");
        assert_eq!(report.total_page_faults, 0, "{policy:?}");
        for req in &trace.requests {
            let mut solo = InferenceSession::start(&e, req.prompt_tokens).unwrap();
            solo.generate(req.generate_tokens).unwrap();
            let solo = solo.finish();
            let served = report.trace(req.id).unwrap();
            assert_eq!(served.prefill_ms, solo.ttft_ms, "{policy:?} request {} prefill", req.id);
            assert_eq!(served.tbt_ms, solo.tbt_ms, "{policy:?} request {} TBT series", req.id);
            assert_eq!(served.final_kv_bytes, solo.final_kv_bytes);
        }
    }
}

/// Acceptance criterion: under a moderately constrained budget with a
/// batch cap, page-granular eviction moves strictly fewer
/// `TrafficClass::KvCache` bytes than whole-cache spill — it peels only
/// the overflow instead of thrashing entire caches.
#[test]
fn paged_eviction_moves_fewer_bytes_than_whole_cache() {
    let model = presets::tiny_decoder();
    let trace = ArrivalTrace::uniform(4, 0.0, 16, 8);
    let single = ServeRequest::new(0, 0.0, 16, 8).peak_kv_bytes(&model);
    let base = ServeConfig::default().with_budget(5 * single / 2).with_max_batch(2);
    let e = engine();
    let whole = serve(&e, &trace, &base.with_policy(KvPolicy::Lru)).unwrap();
    let paged =
        serve(&e, &trace, &base.with_policy(KvPolicy::PagedLru).with_page_bytes(256)).unwrap();
    assert!(whole.total_evictions > 0, "the scenario must exercise eviction");
    assert!(paged.total_page_spills > 0 && paged.total_page_faults > 0);
    let (w, p) =
        (whole.ledger.bytes(TrafficClass::KvCache), paged.ledger.bytes(TrafficClass::KvCache));
    assert!(p < w, "paged migration {p} must undercut whole-cache {w}");
    // Both still generate every token.
    assert_eq!(whole.total_generated_tokens, 32);
    assert_eq!(paged.total_generated_tokens, 32);
}

/// Livelock regression: when every active session completes while demoted
/// sessions still hold unspilled pages, the head-of-line request must not
/// be blocked by those pages — they are reclaimable on demand, and
/// counting them against admission once wedged the scheduler forever
/// (empty step set → no eviction pass → clock never advances).
#[test]
fn paged_zombie_pages_never_wedge_admission() {
    let trace = ArrivalTrace::new(vec![
        ServeRequest::new(0, 0.0, 41, 11),
        ServeRequest::new(1, 0.1, 12, 8),
        ServeRequest::new(2, 0.22, 35, 1),
        ServeRequest::new(3, 0.33, 36, 11),
        ServeRequest::new(4, 0.45, 26, 14),
    ]);
    let config = ServeConfig::default()
        .with_budget(8049)
        .with_policy(KvPolicy::PagedLru)
        .with_page_bytes(64)
        .with_max_batch(2);
    let report = serve(&engine(), &trace, &config).unwrap();
    assert_eq!(report.total_generated_tokens, 11 + 8 + 1 + 11 + 14);
    assert!(report.peak_kv_bytes <= 8049);
}

/// A seeded Poisson trace replays deterministically end to end: the same
/// seed produces the same trace, and serving it twice produces the same
/// report byte for byte.
#[test]
fn poisson_serving_is_seed_deterministic() {
    use meadow::models::workload::ZipfLengths;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let lengths = ZipfLengths {
        prompt_min: 4,
        prompt_max: 24,
        generate_min: 2,
        generate_max: 8,
        exponent: 1.2,
    };
    let make =
        || ArrivalTrace::open_loop(6, 20_000.0, &lengths, &mut StdRng::seed_from_u64(11)).unwrap();
    let trace = make();
    assert_eq!(trace, make(), "seeded generator must replay");
    let model = presets::tiny_decoder();
    let single_max = trace.requests.iter().map(|r| r.peak_kv_bytes(&model)).max().unwrap();
    let config = ServeConfig::default()
        .with_budget(single_max)
        .with_policy(KvPolicy::PagedLru)
        .with_page_bytes(256);
    let e = engine();
    let a = serve(&e, &trace, &config).unwrap();
    let b = serve(&e, &make(), &config).unwrap();
    assert_eq!(a, b);
    assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());
}

/// Under contention the evicted session pays a KV reload on its next step,
/// so its TBT series dominates the solo series entry-for-entry.
#[test]
fn reload_penalties_only_ever_add_latency() {
    let e = engine();
    let model = presets::tiny_decoder();
    let trace = ArrivalTrace::uniform(3, 0.0, 16, 8);
    let single = ServeRequest::new(0, 0.0, 16, 8).peak_kv_bytes(&model);
    let config = ServeConfig::default().with_budget(single + single / 2);
    let report = serve(&e, &trace, &config).unwrap();
    assert!(report.total_evictions > 0);
    for req in &trace.requests {
        let mut solo = InferenceSession::start(&e, req.prompt_tokens).unwrap();
        solo.generate(req.generate_tokens).unwrap();
        let solo = solo.finish();
        let served = report.trace(req.id).unwrap();
        for (k, (s, ref_ms)) in served.tbt_ms.iter().zip(&solo.tbt_ms).enumerate() {
            assert!(s >= ref_ms, "request {} token {k}: {s} < {ref_ms}", req.id);
        }
    }
}
