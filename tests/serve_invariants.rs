//! Property suite for the multi-session serving simulator: conservation,
//! KV-budget safety, eviction accounting and the solo-equivalence contract
//! (an unbounded budget reproduces exactly the per-token latencies of
//! independent `InferenceSession`s).

mod common;

use common::requests_from_seed as seeded;
use meadow::core::serve::{serve, KvPolicy, ServeConfig};
use meadow::core::session::InferenceSession;
use meadow::core::{EngineConfig, MeadowEngine};
use meadow::models::presets;
use meadow::models::workload::{ArrivalTrace, ServeRequest};
use meadow::sim::TrafficClass;
use proptest::prelude::*;

fn engine() -> MeadowEngine {
    MeadowEngine::new(EngineConfig::zcu102(presets::tiny_decoder(), 12.0)).unwrap()
}

/// Up to 5 requests with ragged prompts/generation lengths and staggered
/// arrivals.
fn requests_from_seed(seed: u64, n: usize) -> ArrivalTrace {
    seeded(seed, n, 24, 8, 0.5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: every request finishes exactly once with exactly the
    /// requested number of tokens, under any policy and a safe budget.
    #[test]
    fn tokens_are_conserved(seed in 0u64..1000, n in 1usize..6, lru in any::<bool>()) {
        let model = presets::tiny_decoder();
        let trace = requests_from_seed(seed, n);
        // A budget between "largest single request" and "everything at
        // once" exercises admission without making any request unservable.
        let single_max =
            trace.requests.iter().map(|r| r.peak_kv_bytes(&model)).max().unwrap();
        let budget = single_max + (trace.total_peak_kv_bytes(&model) - single_max) / 2;
        let policy = if lru { KvPolicy::Lru } else { KvPolicy::Fifo };
        let config = ServeConfig::default().with_budget(budget).with_policy(policy);
        let report = serve(&engine(), &trace, &config).unwrap();
        prop_assert_eq!(report.requests, n);
        prop_assert_eq!(report.traces.len(), n);
        for (req, t) in trace.requests.iter().zip(&report.traces) {
            prop_assert_eq!(t.id, req.id);
            prop_assert_eq!(t.generated_tokens, req.generate_tokens);
            prop_assert_eq!(t.tbt_ms.len(), req.generate_tokens);
            prop_assert!(t.finish_ms >= t.first_token_ms);
            prop_assert!(t.first_token_ms >= req.arrival_ms);
            prop_assert!(t.queue_wait_ms >= 0.0);
        }
        let total: u64 = trace.requests.iter().map(|r| r.generate_tokens as u64).sum();
        prop_assert_eq!(report.total_generated_tokens, total);
    }

    /// The KV budget is never exceeded at any step (the report's peak is
    /// the max over every tick's residency).
    #[test]
    fn kv_budget_is_never_exceeded(seed in 0u64..1000, n in 1usize..6) {
        let model = presets::tiny_decoder();
        let trace = requests_from_seed(seed, n);
        let single_max =
            trace.requests.iter().map(|r| r.peak_kv_bytes(&model)).max().unwrap();
        let config = ServeConfig::default().with_budget(single_max);
        let report = serve(&engine(), &trace, &config).unwrap();
        prop_assert!(
            report.peak_kv_bytes <= single_max,
            "peak {} exceeds budget {}",
            report.peak_kv_bytes,
            single_max
        );
    }

    /// No eviction can occur when the budget fits every session's peak
    /// simultaneously, and the KvCache migration ledger stays empty.
    #[test]
    fn fitting_budget_never_evicts(seed in 0u64..1000, n in 1usize..6) {
        let model = presets::tiny_decoder();
        let trace = requests_from_seed(seed, n);
        let config =
            ServeConfig::default().with_budget(trace.total_peak_kv_bytes(&model));
        let report = serve(&engine(), &trace, &config).unwrap();
        prop_assert_eq!(report.total_evictions, 0);
        prop_assert_eq!(report.ledger.bytes(TrafficClass::KvCache), 0);
        prop_assert!(report.traces.iter().all(|t| t.evictions == 0));
    }

    /// FIFO and LRU are policies over *placement*, not *work*: both must
    /// serve every request to completion with identical token counts.
    #[test]
    fn fifo_and_lru_generate_identical_token_counts(seed in 0u64..1000, n in 2usize..6) {
        let model = presets::tiny_decoder();
        let trace = requests_from_seed(seed, n);
        let single_max =
            trace.requests.iter().map(|r| r.peak_kv_bytes(&model)).max().unwrap();
        let base = ServeConfig::default().with_budget(single_max).with_max_batch(2);
        let e = engine();
        let fifo = serve(&e, &trace, &base.with_policy(KvPolicy::Fifo)).unwrap();
        let lru = serve(&e, &trace, &base.with_policy(KvPolicy::Lru)).unwrap();
        prop_assert_eq!(fifo.total_generated_tokens, lru.total_generated_tokens);
        for (f, l) in fifo.traces.iter().zip(&lru.traces) {
            prop_assert_eq!(f.generated_tokens, l.generated_tokens);
        }
    }
}

/// Acceptance criterion: a budget smaller than total demand completes all
/// requests with at least one eviction.
#[test]
fn constrained_budget_completes_with_evictions() {
    let model = presets::tiny_decoder();
    let trace = ArrivalTrace::uniform(4, 0.0, 16, 8);
    let single = ServeRequest::new(0, 0.0, 16, 8).peak_kv_bytes(&model);
    assert!(2 * single < trace.total_peak_kv_bytes(&model));
    for policy in [KvPolicy::Fifo, KvPolicy::Lru] {
        let config = ServeConfig::default().with_budget(2 * single).with_policy(policy);
        let report = serve(&engine(), &trace, &config).unwrap();
        assert_eq!(report.total_generated_tokens, 32, "{policy:?}");
        assert!(report.total_evictions > 0, "{policy:?} must evict under pressure");
        assert!(report.peak_kv_bytes <= 2 * single);
        assert!(report.ledger.bytes(TrafficClass::KvCache) > 0);
    }
}

/// Acceptance criterion: with an unbounded budget, every request's prefill
/// and per-token service latencies are bit-identical to an independent
/// `InferenceSession` walking the same request on the same engine.
#[test]
fn unbounded_budget_matches_independent_sessions() {
    let e = engine();
    let trace = ArrivalTrace::new(vec![
        ServeRequest::new(0, 0.0, 16, 8),
        ServeRequest::new(1, 0.0, 7, 5),
        ServeRequest::new(2, 2.0, 31, 3),
        ServeRequest::new(3, 2.0, 1, 6),
    ]);
    let report = serve(&e, &trace, &ServeConfig::unbounded()).unwrap();
    assert_eq!(report.total_evictions, 0);
    for req in &trace.requests {
        let mut solo = InferenceSession::start(&e, req.prompt_tokens).unwrap();
        solo.generate(req.generate_tokens).unwrap();
        let solo = solo.finish();
        let served = report.trace(req.id).unwrap();
        assert_eq!(served.prefill_ms, solo.ttft_ms, "request {} prefill", req.id);
        assert_eq!(served.tbt_ms, solo.tbt_ms, "request {} TBT series", req.id);
        assert_eq!(served.final_kv_bytes, solo.final_kv_bytes);
    }
}

/// Under contention the evicted session pays a KV reload on its next step,
/// so its TBT series dominates the solo series entry-for-entry.
#[test]
fn reload_penalties_only_ever_add_latency() {
    let e = engine();
    let model = presets::tiny_decoder();
    let trace = ArrivalTrace::uniform(3, 0.0, 16, 8);
    let single = ServeRequest::new(0, 0.0, 16, 8).peak_kv_bytes(&model);
    let config = ServeConfig::default().with_budget(single + single / 2);
    let report = serve(&e, &trace, &config).unwrap();
    assert!(report.total_evictions > 0);
    for req in &trace.requests {
        let mut solo = InferenceSession::start(&e, req.prompt_tokens).unwrap();
        solo.generate(req.generate_tokens).unwrap();
        let solo = solo.finish();
        let served = report.trace(req.id).unwrap();
        for (k, (s, ref_ms)) in served.tbt_ms.iter().zip(&solo.tbt_ms).enumerate() {
            assert!(s >= ref_ms, "request {} token {k}: {s} < {ref_ms}", req.id);
        }
    }
}
