//! Property and golden suite for the cluster serving API: single-chip
//! degeneracy (a 1-chip cluster reproduces `serve` bit-exactly), request
//! conservation across chips, per-chip budget safety, migration-vs-spill
//! traffic ordering, `MEADOW_THREADS` bit-identity, and a byte-stable
//! `ClusterReport` golden snapshot.

mod common;

use common::requests_from_seed;
use meadow::core::cluster::{
    Cluster, ClusterConfig, ClusterReport, LeastLoadedKv, LeastLoadedWeighted, RoundRobin,
    SessionAffinity, ToLeastLoaded,
};
use meadow::core::serve::{serve, KvPolicy, ServeConfig};
use meadow::core::{EngineConfig, MeadowEngine};
use meadow::models::presets;
use meadow::models::workload::{ArrivalTrace, ServeRequest};
use meadow::tensor::parallel::ExecConfig;
use proptest::prelude::*;
use std::path::PathBuf;

fn engine() -> MeadowEngine {
    MeadowEngine::new(EngineConfig::zcu102(presets::tiny_decoder(), 12.0)).unwrap()
}

/// Up to 5 requests with ragged lengths and staggered arrivals.
fn staggered_trace(seed: u64, n: usize) -> ArrivalTrace {
    requests_from_seed(seed, n, 24, 8, 0.5)
}

/// A budget between "largest single request" and "everything at once":
/// exercises admission and eviction without making any request unservable.
fn contended_budget(trace: &ArrivalTrace) -> u64 {
    let model = presets::tiny_decoder();
    let single_max = trace.requests.iter().map(|r| r.peak_kv_bytes(&model)).max().unwrap();
    single_max + (trace.total_peak_kv_bytes(&model) - single_max) / 4
}

fn placement_config(idx: u8, chips: usize, serve: ServeConfig) -> ClusterConfig {
    let builder = ClusterConfig::builder().chips(chips).serve(serve);
    match idx % 3 {
        0 => builder.placement(RoundRobin),
        1 => builder.placement(LeastLoadedKv),
        _ => builder.placement(SessionAffinity),
    }
    .build()
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Acceptance criterion: a 1-chip cluster with round-robin placement
    /// and no migration reproduces the single-chip `serve` output
    /// bit-exactly — report and serialized bytes alike.
    #[test]
    fn one_chip_cluster_reproduces_serve_bit_exactly(
        seed in 0u64..500,
        n in 1usize..6,
        paged in any::<bool>(),
    ) {
        let trace = staggered_trace(seed, n);
        let mut config = ServeConfig::default()
            .with_budget(contended_budget(&trace))
            .with_max_batch(2);
        if paged {
            config = config.with_policy(KvPolicy::PagedLru).with_page_bytes(256);
        }
        let e = engine();
        let single = serve(&e, &trace, &config).unwrap();
        let cluster_config =
            ClusterConfig::builder().chips(1).serve(config).placement(RoundRobin).build().unwrap();
        let report = Cluster::new(e, cluster_config).serve(&trace).unwrap();
        prop_assert_eq!(report.chips, 1);
        prop_assert_eq!(report.migrated_out_bytes, 0);
        prop_assert_eq!(&report.per_chip[0].report, &single);
        prop_assert_eq!(
            report.per_chip[0].report.to_json().unwrap(),
            single.to_json().unwrap()
        );
    }

    /// Conservation across chips: every request lands on exactly one chip,
    /// finishes exactly once with the requested token count, and the
    /// cluster totals are the per-chip sums.
    #[test]
    fn requests_are_conserved_across_chips(
        seed in 0u64..500,
        n in 1usize..6,
        chips in 1usize..5,
        placement_idx in 0u8..3,
    ) {
        let trace = staggered_trace(seed, n);
        let serve_config = ServeConfig::default().with_budget(contended_budget(&trace));
        let config = placement_config(placement_idx, chips, serve_config);
        let report = Cluster::new(engine(), config).serve(&trace).unwrap();
        prop_assert_eq!(report.chips, chips);
        prop_assert_eq!(report.requests, n);
        let placed: u64 = report.per_chip.iter().map(|c| c.assigned_requests).sum();
        prop_assert_eq!(placed as usize, n);
        // Every id appears exactly once across the chips, fully served.
        let mut seen: Vec<u32> = Vec::new();
        for chip in &report.per_chip {
            prop_assert_eq!(chip.report.traces.len() as u64, chip.assigned_requests);
            for t in &chip.report.traces {
                prop_assert!(!seen.contains(&t.id), "request {} served twice", t.id);
                seen.push(t.id);
            }
        }
        prop_assert_eq!(seen.len(), n);
        for req in &trace.requests {
            let t = report.trace(req.id).unwrap();
            prop_assert_eq!(t.generated_tokens, req.generate_tokens);
        }
        let total: u64 = trace.requests.iter().map(|r| r.generate_tokens as u64).sum();
        prop_assert_eq!(report.total_generated_tokens, total);
        let chip_tokens: u64 =
            report.per_chip.iter().map(|c| c.report.total_generated_tokens).sum();
        prop_assert_eq!(chip_tokens, total);
    }

    /// Per-chip budget safety: no chip's peak KV residency ever exceeds
    /// the per-chip budget, under any placement, with or without
    /// migration (parked remote bytes count against the *donor's* slack,
    /// which is carved out of its budget headroom).
    #[test]
    fn per_chip_budgets_are_never_exceeded(
        seed in 0u64..500,
        n in 1usize..6,
        chips in 1usize..4,
        placement_idx in 0u8..3,
        migrate in any::<bool>(),
    ) {
        let trace = staggered_trace(seed, n);
        let budget = contended_budget(&trace);
        let serve_config = ServeConfig::default()
            .with_budget(budget)
            .with_policy(KvPolicy::PagedLru)
            .with_page_bytes(128);
        let builder = ClusterConfig::builder().chips(chips).serve(serve_config);
        let builder = match placement_idx % 3 {
            0 => builder.placement(RoundRobin),
            1 => builder.placement(LeastLoadedKv),
            _ => builder.placement(SessionAffinity),
        };
        let config = if migrate { builder.migration(ToLeastLoaded) } else { builder }
            .build()
            .unwrap();
        let report = Cluster::new(engine(), config).serve(&trace).unwrap();
        for chip in &report.per_chip {
            prop_assert!(
                chip.report.peak_kv_bytes <= budget,
                "chip {} peak {} exceeds budget {}",
                chip.chip,
                chip.report.peak_kv_bytes,
                budget
            );
        }
    }

    /// Acceptance criterion: under `LeastLoadedKv` placement, cross-chip
    /// migration traffic never exceeds the DRAM spill traffic the same
    /// cluster produces with migration disabled — migration only ever
    /// *replaces* spill transfers. Arrivals all land at t=0 so both runs
    /// make identical scheduling decisions and the byte accounting is
    /// exactly conserved.
    #[test]
    fn migration_traffic_is_bounded_by_spill_traffic(
        seed in 0u64..500,
        n in 2usize..6,
        chips in 2usize..4,
    ) {
        let trace = requests_from_seed(seed, n, 24, 8, 0.0);
        let serve_config = ServeConfig::default()
            .with_budget(contended_budget(&trace))
            .with_policy(KvPolicy::PagedLru)
            .with_page_bytes(256)
            .with_max_batch(1);
        let run = |migrate: bool| {
            let builder =
                ClusterConfig::builder().chips(chips).serve(serve_config).placement(LeastLoadedKv);
            let config =
                if migrate { builder.migration(ToLeastLoaded) } else { builder }.build().unwrap();
            Cluster::new(engine(), config).serve(&trace).unwrap()
        };
        let without = run(false);
        let with = run(true);
        prop_assert_eq!(without.migrated_out_bytes, 0);
        prop_assert!(
            with.migrated_out_bytes <= without.dram_kv_bytes,
            "migrated {} exceeds the spill it replaces {}",
            with.migrated_out_bytes,
            without.dram_kv_bytes
        );
        // Byte conservation: every byte either still spills to DRAM or
        // moved over the NoC (out at eviction, back at reload).
        prop_assert_eq!(
            with.dram_kv_bytes + with.migrated_out_bytes + with.reloaded_remote_bytes,
            without.dram_kv_bytes
        );
        prop_assert_eq!(with.total_generated_tokens, without.total_generated_tokens);
    }

    /// Acceptance criterion: the `ClusterReport` — including its
    /// serialized bytes — is bit-identical across `MEADOW_THREADS`
    /// settings (the per-chip fan-out is order-preserving and each chip's
    /// simulation is deterministic).
    #[test]
    fn cluster_report_is_bit_identical_across_threads(
        seed in 0u64..200,
        n in 1usize..5,
        chips in 1usize..4,
        migrate in any::<bool>(),
    ) {
        let trace = staggered_trace(seed, n);
        let serve_config = ServeConfig::default()
            .with_budget(contended_budget(&trace))
            .with_policy(KvPolicy::PagedLru)
            .with_page_bytes(256);
        let build = |threads: usize| {
            let e = MeadowEngine::new(
                EngineConfig::zcu102(presets::tiny_decoder(), 12.0)
                    .with_exec(ExecConfig::with_threads(threads)),
            )
            .unwrap();
            let builder = ClusterConfig::builder()
                .chips(chips)
                .serve(serve_config)
                .placement(SessionAffinity);
            let config =
                if migrate { builder.migration(ToLeastLoaded) } else { builder }.build().unwrap();
            Cluster::new(e, config)
        };
        let reference = build(1).serve(&trace).unwrap();
        for threads in [2usize, 4, 8] {
            let report = build(threads).serve(&trace).unwrap();
            prop_assert_eq!(&report, &reference, "threads {}", threads);
            prop_assert_eq!(
                report.to_json().unwrap(),
                reference.to_json().unwrap(),
                "serialized bytes, threads {}",
                threads
            );
        }
    }

    /// Heterogeneity degeneracy: a `chip_specs` list of all-equal specs
    /// is bit-identical — report and serialized bytes — to the replica
    /// path `.chips(n)` with the same engine, under every placement.
    #[test]
    fn homogeneous_chip_specs_match_the_replica_path_bit_exactly(
        seed in 0u64..200,
        n in 1usize..6,
        chips in 1usize..4,
        placement_idx in 0u8..3,
    ) {
        let trace = staggered_trace(seed, n);
        let serve_config = ServeConfig::default().with_budget(contended_budget(&trace));
        let spec = EngineConfig::zcu102(presets::tiny_decoder(), 12.0);
        let build = |hetero: bool| {
            let builder = ClusterConfig::builder().serve(serve_config);
            let builder = if hetero {
                builder.chip_specs(vec![spec.clone(); chips])
            } else {
                builder.chips(chips)
            };
            match placement_idx % 3 {
                0 => builder.placement(RoundRobin),
                1 => builder.placement(LeastLoadedKv),
                _ => builder.placement(SessionAffinity),
            }
            .build()
            .unwrap()
        };
        let replica = Cluster::new(engine(), build(false)).serve(&trace).unwrap();
        let mut hetero = Cluster::new(engine(), build(true)).serve(&trace).unwrap();
        // The spec path additionally reports per-chip utilization; strip
        // it to compare the shared accounting bit-exactly.
        for chip in &hetero.per_chip {
            prop_assert!(chip.utilization.is_some());
        }
        for chip in &mut hetero.per_chip {
            chip.utilization = None;
        }
        prop_assert_eq!(&hetero, &replica);
        prop_assert_eq!(hetero.to_json().unwrap(), replica.to_json().unwrap());
    }

    /// Placement degeneracy: on a homogeneous fleet every chip's
    /// throughput score is equal, so `LeastLoadedWeighted` routes exactly
    /// like `LeastLoadedKv` and the two reports differ only in the
    /// placement name.
    #[test]
    fn weighted_placement_degenerates_to_least_loaded_kv_when_homogeneous(
        seed in 0u64..200,
        n in 1usize..6,
        chips in 1usize..4,
    ) {
        let trace = staggered_trace(seed, n);
        let serve_config = ServeConfig::default().with_budget(contended_budget(&trace));
        let run = |weighted: bool| {
            let builder = ClusterConfig::builder().chips(chips).serve(serve_config);
            let config = if weighted {
                builder.placement(LeastLoadedWeighted)
            } else {
                builder.placement(LeastLoadedKv)
            }
            .build()
            .unwrap();
            Cluster::new(engine(), config).serve(&trace).unwrap()
        };
        let mut weighted = run(true);
        let kv = run(false);
        prop_assert_eq!(&weighted.placement, "least-loaded-weighted");
        weighted.placement = kv.placement.clone();
        prop_assert_eq!(&weighted, &kv);
    }
}

/// The pinned cluster scenario: the serve-golden arrival set with sticky
/// affinity hints skewing 6 of 8 requests onto chip 0 of a 2-chip
/// cluster, paged eviction under a tight budget, and NoC migration into
/// chip 1's headroom — placement, eviction, page-granular migration,
/// remote reload *and* residual DRAM spill (the headroom is smaller than
/// the spill demand) all land in the snapshot.
fn golden_cluster_report() -> ClusterReport {
    let requests: Vec<ServeRequest> = [
        (0u32, 0.0f64, 16usize, 8usize),
        (1, 0.0, 24, 4),
        (2, 0.01, 8, 6),
        (3, 0.015, 31, 2),
        (4, 0.02, 4, 8),
        (5, 0.03, 12, 5),
        (6, 0.05, 20, 3),
        (7, 0.08, 6, 7),
    ]
    .into_iter()
    .map(|(id, arrival, prompt, generate)| {
        ServeRequest::new(id, arrival, prompt, generate).with_affinity(u32::from(id >= 6))
    })
    .collect();
    let trace = ArrivalTrace::new(requests);
    let budget = 6144u64;
    let serve_config = ServeConfig::default()
        .with_budget(budget)
        .with_policy(KvPolicy::PagedLru)
        .with_page_bytes(256)
        .with_max_batch(2);
    let config = ClusterConfig::builder()
        .chips(2)
        .serve(serve_config)
        .placement(SessionAffinity)
        .migration(ToLeastLoaded)
        .build()
        .unwrap();
    let report = Cluster::new(engine(), config).serve(&trace).unwrap();
    assert!(report.migration_events > 0, "the golden scenario must exercise migration");
    assert!(report.dram_kv_bytes > 0, "the golden scenario must still spill");
    report
}

#[test]
fn cluster_report_is_byte_stable() {
    let got = golden_cluster_report().to_json().unwrap() + "\n";
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/cluster_zcu102.json");
    if std::env::var_os("MEADOW_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &got).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    assert_eq!(
        got, want,
        "ClusterReport diverged from the committed snapshot; if the change is intentional, \
         regenerate with MEADOW_UPDATE_GOLDEN=1 cargo test --test cluster_invariants"
    );
}

/// The pinned heterogeneous scenario: two fast ZCU102 chips and one
/// LITTLE chip (half the PEs, half the bandwidth) under the same
/// constrained paged budget as the replica golden, with weighted
/// placement skewing load toward the fast chips and NoC migration
/// parking evicted pages in whoever has headroom — per-chip utilization,
/// the throughput-score-weighted routing and the migration accounting
/// all land in the snapshot.
fn golden_hetero_report() -> ClusterReport {
    let requests: Vec<ServeRequest> = [
        (0u32, 0.0f64, 16usize, 8usize),
        (1, 0.0, 24, 4),
        (2, 0.01, 8, 6),
        (3, 0.015, 31, 2),
        (4, 0.02, 4, 8),
        (5, 0.03, 12, 5),
        (6, 0.05, 20, 3),
        (7, 0.08, 6, 7),
    ]
    .into_iter()
    .map(|(id, arrival, prompt, generate)| ServeRequest::new(id, arrival, prompt, generate))
    .collect();
    let trace = ArrivalTrace::new(requests);
    let serve_config = ServeConfig::default()
        .with_budget(7168)
        .with_policy(KvPolicy::PagedLru)
        .with_page_bytes(256)
        .with_max_batch(2);
    let model = presets::tiny_decoder();
    let config = ClusterConfig::builder()
        .chip_specs(vec![
            EngineConfig::zcu102(model.clone(), 12.0),
            EngineConfig::zcu102(model.clone(), 12.0),
            EngineConfig::zcu102_little(model, 6.0),
        ])
        .serve(serve_config)
        .placement(LeastLoadedWeighted)
        .migration(ToLeastLoaded)
        .build()
        .unwrap();
    let report = Cluster::new(engine(), config).serve(&trace).unwrap();
    assert_eq!(report.chips, 3);
    assert_eq!(report.placement, "least-loaded-weighted");
    assert!(report.migration_events > 0, "the hetero golden must exercise migration");
    for chip in &report.per_chip {
        let u = chip.utilization.expect("hetero runs report per-chip utilization");
        assert!((0.0..=1.0).contains(&u));
    }
    report
}

#[test]
fn hetero_cluster_report_is_byte_stable() {
    let got = golden_hetero_report().to_json().unwrap() + "\n";
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/serve_hetero_zcu102.json");
    if std::env::var_os("MEADOW_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &got).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    assert_eq!(
        got, want,
        "heterogeneous ClusterReport diverged from the committed snapshot; if the change is \
         intentional, regenerate with MEADOW_UPDATE_GOLDEN=1 cargo test --test cluster_invariants"
    );
}
