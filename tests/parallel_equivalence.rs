//! Property tests for the parallel execution subsystem: every parallel hot
//! path must be **bit-identical** to its serial counterpart across thread
//! counts 1/2/4/8 and ragged shapes. This is the contract that lets the
//! perfbench numbers stand in for the serial reference.

mod common;

use common::{requests_from_seed, spread_models};
use meadow::core::serve::{serve, AdmissionPolicy, KvPolicy, ServeConfig};
use meadow::core::{EngineConfig, MeadowEngine};
use meadow::models::presets;
use meadow::models::{KvCompression, KvLayout};
use meadow::packing::chunk::{decompose, decompose_with, ChunkConfig};
use meadow::packing::stats::{IdHistogram, PrecisionDistribution};
use meadow::packing::{PackedWeights, PackingConfig, PackingLevel};
use meadow::tensor::gemm::{matmul_i8, matmul_i8_bt, matmul_i8_bt_with, matmul_i8_tiled_with};
use meadow::tensor::parallel::{partition, ExecConfig};
use meadow::tensor::Matrix;
use proptest::collection::vec;
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn matrix_from(data: Vec<i8>, rows: usize, cols: usize) -> Matrix<i8> {
    Matrix::from_vec(rows, cols, data).expect("generated shape matches data")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_tiled_gemm_is_bit_identical(
        (m, k, n, a_data, b_data) in (1usize..24, 1usize..16, 1usize..24).prop_flat_map(
            |(m, k, n)| (
                Just(m),
                Just(k),
                Just(n),
                vec(-128i8..=127, m * k),
                vec(-128i8..=127, k * n),
            )
        ),
        tile_m in 1usize..6,
        tile_n in 1usize..6,
        tile_k in 1usize..6,
    ) {
        let a = matrix_from(a_data, m, k);
        let b = matrix_from(b_data, k, n);
        let reference = matmul_i8(&a, &b).expect("shapes agree");
        for threads in THREAD_COUNTS {
            let exec = ExecConfig::with_threads(threads);
            let par = matmul_i8_tiled_with(&a, &b, tile_m, tile_n, tile_k, &exec)
                .expect("shapes agree");
            prop_assert_eq!(
                &par, &reference,
                "tiled {}x{}x{} tiles ({},{},{}) threads {}",
                m, k, n, tile_m, tile_n, tile_k, threads
            );
        }
    }

    #[test]
    fn parallel_bt_gemm_is_bit_identical(
        (m, k, n, a_data, bt_data) in (1usize..24, 1usize..16, 1usize..24).prop_flat_map(
            |(m, k, n)| (
                Just(m),
                Just(k),
                Just(n),
                vec(-128i8..=127, m * k),
                vec(-128i8..=127, n * k),
            )
        ),
    ) {
        let a = matrix_from(a_data, m, k);
        let b_t = matrix_from(bt_data, n, k);
        let reference = matmul_i8_bt(&a, &b_t).expect("shapes agree");
        for threads in THREAD_COUNTS {
            let exec = ExecConfig::with_threads(threads);
            let par = matmul_i8_bt_with(&a, &b_t, &exec).expect("shapes agree");
            prop_assert_eq!(&par, &reference, "bt {}x{}x{} threads {}", m, k, n, threads);
        }
    }

    #[test]
    fn parallel_decompose_and_pack_are_bit_identical(
        (rows, chunk_cols, data) in (1usize..40, 1usize..24).prop_flat_map(
            |(rows, chunk_cols)| (
                Just(rows),
                Just(chunk_cols),
                // A small value alphabet keeps the unique table non-trivial
                // (repeated chunks) while ragged row counts vary freely.
                vec(-3i8..=3, rows * chunk_cols * 2),
            )
        ),
    ) {
        let w = matrix_from(data, rows, chunk_cols * 2);
        let config = ChunkConfig::default();
        let (unique, encoded) = decompose(&w, config).expect("chunkable");
        let serial_hist = IdHistogram::new(&encoded, unique.len(), 8);
        let serial_dist = PrecisionDistribution::new(&encoded);
        let packing = PackingConfig::default();
        let serial_packed = PackedWeights::pack(&w, &packing, PackingLevel::FrequencyAware)
            .expect("packable");
        for threads in THREAD_COUNTS {
            let exec = ExecConfig::with_threads(threads);
            let (pu, pe) = decompose_with(&w, config, &exec).expect("chunkable");
            prop_assert_eq!(&pu, &unique, "unique table, {} threads", threads);
            prop_assert_eq!(&pe, &encoded, "encoded ids, {} threads", threads);
            prop_assert_eq!(
                &IdHistogram::new_with(&pe, pu.len(), 8, &exec),
                &serial_hist,
                "histogram, {} threads",
                threads
            );
            prop_assert_eq!(
                &PrecisionDistribution::new_with(&pe, &exec),
                &serial_dist,
                "precision distribution, {} threads",
                threads
            );
            let packed = PackedWeights::pack_with(&w, &packing, PackingLevel::FrequencyAware, &exec)
                .expect("packable");
            prop_assert_eq!(&packed, &serial_packed, "packed stream, {} threads", threads);
            prop_assert_eq!(packed.unpack().expect("round trip"), w.clone());
        }
    }

    /// The serving simulator fans per-step measurements out on the engine's
    /// worker pool; the resulting `ServeReport` (including its serialized
    /// bytes, which the golden test pins) must be bit-identical across
    /// thread counts — for whole-cache and paged eviction, queueing and
    /// load-shedding admission alike, under every KV layout/compression
    /// point of the seam.
    #[test]
    fn serve_report_is_bit_identical_across_threads(
        seed in 0u64..500,
        n in 1usize..5,
        constrained in any::<bool>(),
        policy_idx in 0u8..3,
        shed in any::<bool>(),
        kv_idx in 0u8..4,
        weights_idx in 0u8..3,
    ) {
        let model = presets::tiny_decoder();
        // Arrivals staggered at tick scale (tens of µs on the tiny model)
        // so the batched path is genuinely exercised.
        let mut trace = requests_from_seed(seed, n, 20, 6, 0.01);
        let (kv_layout, kv_compression) = match kv_idx % 4 {
            0 => (KvLayout::Dense, KvCompression::None),
            1 => (KvLayout::GroupedHeads { kv_heads: 2 }, KvCompression::None),
            2 => (KvLayout::SlidingWindow { window: 8, sinks: 2 }, KvCompression::None),
            _ => (KvLayout::Dense, KvCompression::VedaVote { keep_ratio: 0.5 }),
        };
        let mut config = ServeConfig::default()
            .with_policy(match policy_idx % 3 {
                0 => KvPolicy::Fifo,
                1 => KvPolicy::Lru,
                _ => KvPolicy::PagedLru,
            })
            .with_page_bytes(256)
            .with_kv_layout(kv_layout)
            .with_kv_compression(kv_compression);
        if shed {
            config = config.with_admission(AdmissionPolicy::RejectAfter { ttft_slo_ms: 0.2 });
        }
        // Weight-residency points: off, sequential cold loads, and
        // streaming overlap — two models churning under a one-model budget
        // in both budgeted cases.
        if weights_idx % 3 > 0 {
            trace = spread_models(trace, 2);
            config = config
                .with_weight_budget(model.total_weight_bytes())
                .with_weight_streaming(weights_idx % 3 == 2);
        }
        if constrained {
            let single_max =
                trace.requests.iter().map(|r| r.peak_kv_bytes(&model)).max().unwrap();
            config = config.with_budget(single_max).with_max_batch(2);
        }
        let reference = serve(
            &MeadowEngine::new(EngineConfig::zcu102(model.clone(), 12.0)).unwrap(),
            &trace,
            &config,
        )
        .unwrap();
        for threads in THREAD_COUNTS {
            let engine = MeadowEngine::new(
                EngineConfig::zcu102(model.clone(), 12.0)
                    .with_exec(ExecConfig::with_threads(threads)),
            )
            .unwrap();
            let report = serve(&engine, &trace, &config).unwrap();
            prop_assert_eq!(&report, &reference, "threads {}", threads);
            prop_assert_eq!(
                report.to_json().expect("serializable"),
                reference.to_json().expect("serializable"),
                "serialized bytes, threads {}", threads
            );
        }
    }

    /// Heterogeneous cluster serving is bit-identical across thread
    /// counts: the per-chip fan-out splits one thread budget among
    /// *different* engines (big/LITTLE fleet under weighted placement),
    /// and neither the chip fan-out order nor the inner per-engine
    /// fan-out may leak into the report.
    #[test]
    fn hetero_cluster_report_is_bit_identical_across_threads(
        seed in 0u64..300,
        n in 1usize..5,
        littles in 1usize..3,
        migrate in any::<bool>(),
    ) {
        use meadow::core::cluster::{LeastLoadedWeighted, ToLeastLoaded};
        use meadow::core::spec::ServeSpec;

        let model = presets::tiny_decoder();
        let trace = requests_from_seed(seed, n, 20, 6, 0.01);
        let single_max = trace.requests.iter().map(|r| r.peak_kv_bytes(&model)).max().unwrap();
        let config = ServeConfig::default()
            .with_budget(2 * single_max)
            .with_policy(KvPolicy::PagedLru)
            .with_page_bytes(256)
            .with_max_batch(2);
        let mut specs = vec![EngineConfig::zcu102(model.clone(), 12.0)];
        specs.extend((0..littles).map(|_| EngineConfig::zcu102_little(model.clone(), 6.0)));
        let run = |threads: usize| {
            let engine = MeadowEngine::new(
                EngineConfig::zcu102(model.clone(), 12.0)
                    .with_exec(ExecConfig::with_threads(threads)),
            )
            .unwrap();
            let mut builder = ServeSpec::builder()
                .chip_specs(specs.clone())
                .config(config)
                .placement(LeastLoadedWeighted);
            if migrate {
                builder = builder.migration(ToLeastLoaded);
            }
            builder.build().unwrap().run(&engine, &trace).unwrap().into_cluster().unwrap()
        };
        let reference = run(1);
        for threads in [2usize, 4, 8] {
            let report = run(threads);
            prop_assert_eq!(&report, &reference, "threads {}", threads);
            prop_assert_eq!(
                report.to_json().expect("serializable"),
                reference.to_json().expect("serializable"),
                "serialized bytes, threads {}", threads
            );
        }
    }

    #[test]
    fn partition_is_a_cover_for_ragged_lengths(len in 0usize..300, parts in 1usize..12) {
        let ranges = partition(len, parts);
        let mut next = 0;
        for r in &ranges {
            prop_assert_eq!(r.start, next);
            prop_assert!(r.end > r.start);
            next = r.end;
        }
        prop_assert_eq!(next, len);
        prop_assert!(ranges.len() <= parts.max(1));
        if len > 0 {
            // Near-equal split: sizes differ by at most one element.
            let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
            let min = sizes.iter().min().copied().unwrap();
            let max = sizes.iter().max().copied().unwrap();
            prop_assert!(max - min <= 1, "uneven split {:?}", sizes);
        }
    }
}
