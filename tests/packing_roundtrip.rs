//! Property tests: weight packing is lossless for *arbitrary* INT8 matrices
//! at every optimization level — the reproduction's form of the paper's
//! "approximation-less" claim (§5).

use meadow::packing::{ChunkConfig, PackedWeights, PackingConfig, PackingLevel};
use meadow::tensor::Matrix;
use proptest::prelude::*;

fn arb_matrix(max_rows: usize, max_chunk_cols: usize) -> impl Strategy<Value = Matrix<i8>> {
    (1..=max_rows, 1..=max_chunk_cols).prop_flat_map(|(rows, chunk_cols)| {
        let cols = chunk_cols * 2;
        proptest::collection::vec(any::<i8>(), rows * cols)
            .prop_map(move |data| Matrix::from_vec(rows, cols, data).expect("sized to shape"))
    })
}

/// Matrices with heavy chunk redundancy (long runs of few values), the
/// regime packing is designed for.
fn arb_redundant_matrix() -> impl Strategy<Value = Matrix<i8>> {
    (1..=24usize, 1..=32usize, proptest::collection::vec(any::<i8>(), 1..=4)).prop_flat_map(
        |(rows, chunk_cols, palette)| {
            let cols = chunk_cols * 2;
            proptest::collection::vec(0..palette.len(), rows * cols).prop_map(move |picks| {
                let data: Vec<i8> = picks.into_iter().map(|i| palette[i]).collect();
                Matrix::from_vec(rows, cols, data).expect("sized to shape")
            })
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pack_unpack_is_bit_exact_for_arbitrary_matrices(w in arb_matrix(24, 32)) {
        for level in PackingLevel::all() {
            let packed = PackedWeights::pack(&w, &PackingConfig::default(), level).unwrap();
            prop_assert_eq!(packed.unpack().unwrap(), w.clone(), "level {:?}", level);
        }
    }

    #[test]
    fn pack_unpack_is_bit_exact_for_redundant_matrices(w in arb_redundant_matrix()) {
        for level in PackingLevel::all() {
            let packed = PackedWeights::pack(&w, &PackingConfig::default(), level).unwrap();
            prop_assert_eq!(packed.unpack().unwrap(), w.clone(), "level {:?}", level);
        }
    }

    #[test]
    fn round_trip_survives_any_payload_width(
        w in arb_redundant_matrix(),
        payload in 16u32..=256,
    ) {
        let cfg = PackingConfig { payload_bits: payload, ..PackingConfig::default() };
        for level in PackingLevel::all() {
            match PackedWeights::pack(&w, &cfg, level) {
                Ok(packed) => prop_assert_eq!(packed.unpack().unwrap(), w.clone()),
                // Narrow payloads may legitimately reject wide IDs.
                Err(meadow::packing::PackingError::PayloadTooNarrow { .. }) => {}
                Err(e) => return Err(TestCaseError::fail(format!("unexpected error {e}"))),
            }
        }
    }

    #[test]
    fn round_trip_survives_chunk_sizes(
        seed_rows in 1..=16usize,
        chunk_elems in 1..=8usize,
        chunks_per_row in 1..=16usize,
        palette in proptest::collection::vec(any::<i8>(), 1..=3),
    ) {
        let cols = chunk_elems * chunks_per_row;
        let data: Vec<i8> =
            (0..seed_rows * cols).map(|i| palette[i % palette.len()]).collect();
        let w = Matrix::from_vec(seed_rows, cols, data).unwrap();
        let cfg = PackingConfig { chunk: ChunkConfig { chunk_elems }, ..PackingConfig::default() };
        for level in PackingLevel::all() {
            let packed = PackedWeights::pack(&w, &cfg, level).unwrap();
            prop_assert_eq!(packed.unpack().unwrap(), w.clone());
        }
    }

    #[test]
    fn packed_size_never_exceeds_uniform_plus_table(w in arb_matrix(16, 16)) {
        // Packet-specific precision can never do worse than one maximal
        // packet per ID group plus the unique matrix.
        let cfg = PackingConfig::default();
        let naive = PackedWeights::pack(&w, &cfg, PackingLevel::Naive).unwrap();
        let freq = PackedWeights::pack(&w, &cfg, PackingLevel::FrequencyAware).unwrap();
        // Frequency-aware packets hold at least as many IDs per packet as
        // uniform-precision packets, so the packet count cannot grow.
        prop_assert!(freq.meta().packets <= naive.meta().packets.max(1) * 2);
    }

    #[test]
    fn decode_ids_matches_original_encoding(w in arb_redundant_matrix()) {
        let (unique, encoded) =
            meadow::packing::chunk::decompose(&w, ChunkConfig::default()).unwrap();
        let packed = PackedWeights::from_decomposition(
            unique,
            encoded.clone(),
            &PackingConfig::default(),
            PackingLevel::PacketSpecific,
        )
        .unwrap();
        prop_assert_eq!(packed.decode_ids().unwrap(), encoded.ids().to_vec());
    }
}

#[test]
fn empty_and_degenerate_matrices() {
    for (rows, cols) in [(0usize, 0usize), (1, 2), (1, 64)] {
        let w = Matrix::<i8>::zeros(rows, cols);
        for level in PackingLevel::all() {
            let packed = PackedWeights::pack(&w, &PackingConfig::default(), level).unwrap();
            assert_eq!(packed.unpack().unwrap(), w);
        }
    }
}
