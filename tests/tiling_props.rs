//! Property tests for the BRAM tiling planner: whatever the operand sizes,
//! the plan must be physical (no under-fetching) and minimal among the two
//! legal orientations.

use meadow::dataflow::tiling::{plan_gemm_tiling, ResidentOperand};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn plan_is_physical_and_minimal(
        input in 0u64..(8 << 20),
        weight in 0u64..(8 << 20),
        input_bram in 1u64..(2 << 20),
        weight_bram in 1u64..(2 << 20),
    ) {
        let plan = plan_gemm_tiling(input, weight, input_bram, weight_bram);
        // Physical: every operand crosses the channel at least once.
        prop_assert!(plan.input_fetch_bytes >= input);
        prop_assert!(plan.weight_fetch_bytes >= weight);
        prop_assert!(plan.passes >= 1);
        // If anything fits, no re-fetch at all.
        if input <= input_bram || weight <= weight_bram {
            prop_assert_eq!(plan.input_fetch_bytes, input);
            prop_assert_eq!(plan.weight_fetch_bytes, weight);
            prop_assert_eq!(plan.passes, 1);
        } else {
            // Otherwise the chosen orientation is the cheaper of the two.
            let input_passes = input.div_ceil(input_bram);
            let weight_passes = weight.div_ceil(weight_bram);
            let input_resident = input + weight * input_passes;
            let weight_resident = weight + input * weight_passes;
            let total = plan.input_fetch_bytes + plan.weight_fetch_bytes;
            prop_assert_eq!(total, input_resident.min(weight_resident));
            match plan.resident {
                ResidentOperand::Input => prop_assert!(input_resident <= weight_resident),
                ResidentOperand::Weight => prop_assert!(weight_resident < input_resident),
            }
        }
    }

    #[test]
    fn bigger_brams_never_increase_traffic(
        input in 1u64..(4 << 20),
        weight in 1u64..(4 << 20),
        bram in 1u64..(1 << 20),
        growth in 1u64..(1 << 20),
    ) {
        let small = plan_gemm_tiling(input, weight, bram, bram);
        let big = plan_gemm_tiling(input, weight, bram + growth, bram + growth);
        let small_total = small.input_fetch_bytes + small.weight_fetch_bytes;
        let big_total = big.input_fetch_bytes + big.weight_fetch_bytes;
        prop_assert!(big_total <= small_total);
    }
}
