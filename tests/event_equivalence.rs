//! Equivalence suite for the two scheduler cores: the event-driven core
//! ([`SchedulerCore::Event`], the default) must produce **bit-identical**
//! reports to the retained tick-scan core ([`SchedulerCore::Tick`], the
//! migration oracle) on randomized traces across every serving mode —
//! single chip, sharded cluster (all placements, with and without
//! migration), and prefill/decode disaggregation — and across KV
//! policies, budgets, SLO admission, speculative decoding, and the KV
//! layout/compression seam (grouped heads, sliding windows, VEDA token
//! eviction).
//!
//! The cores share one iteration structure (one heap drain = one tick
//! scan) and one report epilogue; the event core only skips work the tick
//! scan would discover to be a no-op. Any divergence here is a scheduling
//! bug, not an accuracy trade-off, so the assertions are exact `==` on
//! whole report structs.

mod common;

use common::{requests_from_seed, spread_models};
use meadow::core::cluster::{
    Colocated, LeastLoadedKv, PrefillDecodeSplit, RoundRobin, SessionAffinity, ToLeastLoaded,
};
use meadow::core::serve::{AdmissionPolicy, KvPolicy, SchedulerCore, ServeConfig, SpecDecode};
use meadow::core::spec::ServeSpec;
use meadow::core::{EngineConfig, MeadowEngine};
use meadow::models::presets;
use meadow::models::workload::ArrivalTrace;
use meadow::models::{KvCompression, KvLayout};
use proptest::prelude::*;

fn engine() -> MeadowEngine {
    MeadowEngine::new(EngineConfig::zcu102(presets::tiny_decoder(), 12.0)).unwrap()
}

/// A KV budget scaled off the trace's largest single request, so small
/// multipliers force eviction churn and large ones admit everything.
fn budget_for(trace: &ArrivalTrace, multiplier: u64) -> u64 {
    let model = presets::tiny_decoder();
    let single_max = trace.requests.iter().map(|r| r.peak_kv_bytes(&model)).max().unwrap_or(0);
    multiplier * single_max.max(1)
}

fn policy_from(idx: u8) -> KvPolicy {
    match idx % 3 {
        0 => KvPolicy::Fifo,
        1 => KvPolicy::Lru,
        _ => KvPolicy::PagedLru,
    }
}

/// KV layout/compression points for the equivalence matrices: dense (the
/// oracle identity), both sharing layouts, token eviction, and a combined
/// point. Budgets below are sized off *dense* peaks, so non-dense points
/// run with relatively more headroom — the agreement contract is
/// budget-independent either way.
fn kv_from(idx: u8) -> (KvLayout, KvCompression) {
    match idx % 6 {
        0 => (KvLayout::Dense, KvCompression::None),
        1 => (KvLayout::GroupedHeads { kv_heads: 2 }, KvCompression::None),
        2 => (KvLayout::SlidingWindow { window: 8, sinks: 2 }, KvCompression::None),
        3 => (KvLayout::Dense, KvCompression::VedaVote { keep_ratio: 0.5 }),
        4 => (KvLayout::GroupedHeads { kv_heads: 1 }, KvCompression::VedaVote { keep_ratio: 0.75 }),
        _ => (
            KvLayout::SlidingWindow { window: 16, sinks: 4 },
            KvCompression::VedaVote { keep_ratio: 0.9 },
        ),
    }
}

/// Weight-residency points for the equivalence matrices: the
/// permanently-resident identity, a sequential-load one-model budget, and
/// streaming overlap under a one-model budget (the churn-heaviest point
/// once traces carry multiple models). The trace gets two models
/// round-robin whenever a budget is set; without one, model ids must stay
/// 0 (the front door rejects unknown models otherwise).
fn weights_from(idx: u8, trace: ArrivalTrace, config: ServeConfig) -> (ArrivalTrace, ServeConfig) {
    let model_bytes = presets::tiny_decoder().total_weight_bytes();
    match idx % 3 {
        0 => (trace, config),
        1 => (spread_models(trace, 2), config.with_weight_budget(model_bytes)),
        _ => (
            spread_models(trace, 2),
            config.with_weight_budget(model_bytes).with_weight_streaming(true),
        ),
    }
}

fn admission_from(idx: u8) -> AdmissionPolicy {
    match idx % 3 {
        0 => AdmissionPolicy::Queue,
        // Tight and loose SLOs: the first sheds most of an overloaded
        // backlog, the second only stragglers.
        1 => AdmissionPolicy::RejectAfter { ttft_slo_ms: 1.0 },
        _ => AdmissionPolicy::RejectAfter { ttft_slo_ms: 50.0 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Single-chip serving: both cores agree bit-exactly under any KV
    /// policy, budget pressure, and admission policy.
    #[test]
    fn single_chip_cores_agree(
        seed in 0u64..1_000,
        n in 1usize..24,
        policy_idx in 0u8..3,
        budget_mult in 1u64..6,
        admission_idx in 0u8..3,
        kv_idx in 0u8..6,
        weights_idx in 0u8..3,
    ) {
        let engine = engine();
        let trace = requests_from_seed(seed, n, 24, 8, 0.5);
        let (kv_layout, kv_compression) = kv_from(kv_idx);
        let config = ServeConfig::default()
            .with_budget(budget_for(&trace, budget_mult))
            .with_policy(policy_from(policy_idx))
            .with_max_batch(4)
            .with_admission(admission_from(admission_idx))
            .with_kv_layout(kv_layout)
            .with_kv_compression(kv_compression);
        let (trace, config) = weights_from(weights_idx, trace, config);
        let run = |core| {
            ServeSpec::builder()
                .config(config)
                .scheduler(core)
                .build()
                .unwrap()
                .run(&engine, &trace)
                .unwrap()
                .into_single()
                .unwrap()
        };
        prop_assert_eq!(run(SchedulerCore::Event), run(SchedulerCore::Tick));
    }

    /// Speculative decoding exercises the flush-credit path; the cores
    /// must agree on every draft length and acceptance rate.
    #[test]
    fn speculation_cores_agree(
        seed in 0u64..1_000,
        n in 1usize..16,
        draft_len in 1usize..6,
        acceptance in 0.0f64..=1.0,
    ) {
        let engine = engine();
        let trace = requests_from_seed(seed, n, 24, 8, 0.5);
        let config = ServeConfig::default()
            .with_budget(budget_for(&trace, 3))
            .with_policy(KvPolicy::Lru)
            .with_max_batch(4)
            .with_speculation(SpecDecode { draft_len, acceptance, draft_cost_ratio: 0.3 });
        let run = |core| {
            ServeSpec::builder()
                .config(config)
                .scheduler(core)
                .build()
                .unwrap()
                .run(&engine, &trace)
                .unwrap()
                .into_single()
                .unwrap()
        };
        prop_assert_eq!(run(SchedulerCore::Event), run(SchedulerCore::Tick));
    }

    /// Sharded cluster serving: per-chip reports and the aggregate must
    /// agree under every placement policy, with and without migration.
    #[test]
    fn cluster_cores_agree(
        seed in 0u64..1_000,
        n in 1usize..24,
        chips in 1usize..4,
        placement_idx in 0u8..3,
        migrate in any::<bool>(),
        policy_idx in 0u8..3,
        kv_idx in 0u8..6,
        weights_idx in 0u8..3,
    ) {
        let engine = engine();
        let trace = requests_from_seed(seed, n, 24, 8, 0.5);
        let (kv_layout, kv_compression) = kv_from(kv_idx);
        let config = ServeConfig::default()
            .with_budget(budget_for(&trace, 2))
            .with_policy(policy_from(policy_idx))
            .with_max_batch(4)
            .with_kv_layout(kv_layout)
            .with_kv_compression(kv_compression);
        let (trace, config) = weights_from(weights_idx, trace, config);
        let run = |core| {
            let mut builder = ServeSpec::builder().chips(chips).config(config);
            builder = match placement_idx % 3 {
                0 => builder.placement(RoundRobin),
                1 => builder.placement(LeastLoadedKv),
                _ => builder.placement(SessionAffinity),
            };
            if migrate {
                builder = builder.migration(ToLeastLoaded);
            }
            builder
                .scheduler(core)
                .build()
                .unwrap()
                .run(&engine, &trace)
                .unwrap()
                .into_cluster()
                .unwrap()
        };
        prop_assert_eq!(run(SchedulerCore::Event), run(SchedulerCore::Tick));
    }

    /// Heterogeneous cluster serving: per-chip engines differ in PE count
    /// and bandwidth (big/LITTLE fleet, weighted placement, per-link hop
    /// costs), and the cores must still agree bit-exactly — the step
    /// caches are per-chip, so distinct engines can never cross-pollute.
    #[test]
    fn hetero_cluster_cores_agree(
        seed in 0u64..1_000,
        n in 1usize..24,
        littles in 1usize..3,
        migrate in any::<bool>(),
        policy_idx in 0u8..3,
        slow_link in any::<bool>(),
    ) {
        let engine = engine();
        let trace = requests_from_seed(seed, n, 24, 8, 0.5);
        let config = ServeConfig::default()
            .with_budget(budget_for(&trace, 2))
            .with_policy(policy_from(policy_idx))
            .with_max_batch(4);
        let model = presets::tiny_decoder();
        let mut specs = vec![EngineConfig::zcu102(model.clone(), 12.0)];
        specs.extend((0..littles).map(|_| EngineConfig::zcu102_little(model.clone(), 6.0)));
        let hops = if slow_link { vec![3u32; specs.len() - 1] } else { vec![1; specs.len() - 1] };
        let run = |core| {
            let mut builder = ServeSpec::builder()
                .chip_specs(specs.clone())
                .link_hops(hops.clone())
                .config(config)
                .placement(meadow::core::cluster::LeastLoadedWeighted);
            if migrate {
                builder = builder.migration(ToLeastLoaded);
            }
            builder
                .scheduler(core)
                .build()
                .unwrap()
                .run(&engine, &trace)
                .unwrap()
                .into_cluster()
                .unwrap()
        };
        prop_assert_eq!(run(SchedulerCore::Event), run(SchedulerCore::Tick));
    }

    /// Disaggregated serving: the NoC-charged prefill→decode handoff and
    /// both phase pools must agree across split shapes.
    #[test]
    fn disaggregated_cores_agree(
        seed in 0u64..1_000,
        n in 1usize..16,
        prefill_chips in 1usize..4,
        colocated in any::<bool>(),
        kv_idx in 0u8..6,
    ) {
        let engine = engine();
        let trace = requests_from_seed(seed, n, 24, 8, 0.5);
        let (kv_layout, kv_compression) = kv_from(kv_idx);
        let config = ServeConfig::default()
            .with_budget(budget_for(&trace, 2))
            .with_policy(KvPolicy::Lru)
            .with_max_batch(4)
            .with_kv_layout(kv_layout)
            .with_kv_compression(kv_compression);
        let run = |core| {
            let builder = ServeSpec::builder().chips(4).config(config);
            let builder = if colocated {
                builder.phases(Colocated)
            } else {
                builder.phases(PrefillDecodeSplit { prefill_chips })
            };
            builder
                .scheduler(core)
                .build()
                .unwrap()
                .run(&engine, &trace)
                .unwrap()
                .into_disaggregated()
                .unwrap()
        };
        prop_assert_eq!(run(SchedulerCore::Event), run(SchedulerCore::Tick));
    }
}
