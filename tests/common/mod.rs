//! Helpers shared by the serving test suites.

use meadow::models::workload::{ArrivalTrace, ServeRequest};

/// A deterministic but varied request set derived from a seed: `n` requests
/// with ragged prompt/generation lengths (xorshift-sampled below the given
/// bounds) and arrivals staggered by multiples of `arrival_step_ms`.
pub fn requests_from_seed(
    seed: u64,
    n: usize,
    prompt_bound: u64,
    generate_bound: u64,
    arrival_step_ms: f64,
) -> ArrivalTrace {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move |bound: u64| {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x % bound
    };
    ArrivalTrace::new(
        (0..n)
            .map(|i| {
                let prompt = 1 + next(prompt_bound) as usize;
                let generate = 1 + next(generate_bound) as usize;
                let arrival = next(40) as f64 * arrival_step_ms;
                ServeRequest::new(i as u32, arrival, prompt, generate)
            })
            .collect(),
    )
}

/// Tags the trace's requests with `models` ids round-robin, so every
/// model appears whenever the trace has at least `models` requests.
#[allow(dead_code)]
pub fn spread_models(mut trace: ArrivalTrace, models: u32) -> ArrivalTrace {
    for (i, r) in trace.requests.iter_mut().enumerate() {
        *r = r.with_model(i as u32 % models);
    }
    trace
}
