//! Whole-model functional forward passes: MEADOW-mode execution (TPHS
//! attention) must produce bit-identical activations to all-GEMM execution
//! on materialized synthetic models.

use meadow::dataflow::forward::{
    decoder_layer_forward, mismatch_fraction, model_forward, ForwardMode, ForwardScales,
};
use meadow::models::presets;
use meadow::models::weights::ModelWeights;
use meadow::tensor::fixed::ExpLut;
use meadow::tensor::Matrix;
use proptest::prelude::*;
use std::sync::OnceLock;

fn tiny_weights() -> &'static ModelWeights {
    static W: OnceLock<ModelWeights> = OnceLock::new();
    W.get_or_init(|| ModelWeights::synthesize(&presets::tiny_decoder()).expect("synthesizable"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn model_forward_equivalence(
        tokens in 1..=8usize,
        parallelism in 1..=6usize,
        data_seed in any::<u64>(),
    ) {
        let weights = tiny_weights();
        let d = weights.config.d_model;
        let data: Vec<i8> = (0..tokens * d)
            .map(|i| (((data_seed >> (i % 48)) as i64 + i as i64) % 101 - 50) as i8)
            .collect();
        let x = Matrix::from_vec(tokens, d, data).unwrap();
        let lut = ExpLut::hardware_default();
        let scales = ForwardScales::default();
        let gemm = model_forward(&x, weights, ForwardMode::Gemm, &scales, &lut).unwrap();
        let tphs = model_forward(
            &x,
            weights,
            ForwardMode::Tphs { token_parallelism: parallelism },
            &scales,
            &lut,
        )
        .unwrap();
        prop_assert_eq!(mismatch_fraction(&gemm, &tphs), 0.0);
    }
}

#[test]
fn layer_outputs_depend_on_layer_weights() {
    let weights = tiny_weights();
    let config = &weights.config;
    let lut = ExpLut::hardware_default();
    let x = Matrix::from_vec(
        3,
        config.d_model,
        (0..3 * config.d_model).map(|i| (i % 37) as i8 - 18).collect(),
    )
    .unwrap();
    let scales = ForwardScales::default();
    let l0 = decoder_layer_forward(&x, weights.layer(0), config, ForwardMode::Gemm, &scales, &lut)
        .unwrap();
    let l1 = decoder_layer_forward(&x, weights.layer(1), config, ForwardMode::Gemm, &scales, &lut)
        .unwrap();
    assert_ne!(l0, l1, "different layers must transform differently");
}

#[test]
fn forward_is_deterministic() {
    let weights = tiny_weights();
    let lut = ExpLut::hardware_default();
    let x = Matrix::from_vec(
        2,
        weights.config.d_model,
        (0..2 * weights.config.d_model).map(|i| (i % 19) as i8 - 9).collect(),
    )
    .unwrap();
    let scales = ForwardScales::default();
    let a = model_forward(&x, weights, ForwardMode::Gemm, &scales, &lut).unwrap();
    let b = model_forward(&x, weights, ForwardMode::Gemm, &scales, &lut).unwrap();
    assert_eq!(a, b);
}
