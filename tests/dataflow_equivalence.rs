//! Property tests: the TPHS dataflow computes *bit-identical* attention
//! outputs to the GEMM reference across randomized shapes, weights, scales
//! and softmax datapaths (§4's implicit correctness claim).

use meadow::dataflow::functional::{
    attention_reference, attention_tphs_functional, AttentionProblem, AttentionScales,
};
use meadow::tensor::fixed::ExpLut;
use meadow::tensor::softmax::SoftmaxKind;
use meadow::tensor::Matrix;
use proptest::prelude::*;

fn arb_problem() -> impl Strategy<Value = AttentionProblem> {
    // heads ∈ {1,2,4}, head_dim ∈ {4,8,16}, tokens/context small but varied.
    (
        prop_oneof![Just(1usize), Just(2), Just(4)],
        prop_oneof![Just(4usize), Just(8), Just(16)],
        1..=6usize,
        1..=10usize,
        any::<u64>(),
        prop_oneof![Just(SoftmaxKind::Exact), Just(SoftmaxKind::Lut)],
    )
        .prop_flat_map(|(heads, hd, t, c, seed, softmax)| {
            let d = heads * hd;
            let n = t * d + d * d + 2 * c * d;
            proptest::collection::vec(-50i8..=50, n).prop_map(move |data| {
                let mut it = data.into_iter();
                let mut take = |n: usize| -> Vec<i8> { (&mut it).take(n).collect() };
                let _ = seed;
                AttentionProblem {
                    x: Matrix::from_vec(t, d, take(t * d)).unwrap(),
                    wq: Matrix::from_vec(d, d, take(d * d)).unwrap(),
                    k_cache: Matrix::from_vec(c, d, take(c * d)).unwrap(),
                    v_cache: Matrix::from_vec(c, d, take(c * d)).unwrap(),
                    heads,
                    scales: AttentionScales::default(),
                    softmax,
                }
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tphs_equals_gemm_reference(p in arb_problem(), parallelism in 1..=8usize) {
        let lut = ExpLut::hardware_default();
        let reference = attention_reference(&p, &lut).unwrap();
        let (tphs, cycles) = attention_tphs_functional(&p, parallelism, &lut).unwrap();
        prop_assert_eq!(tphs, reference);
        prop_assert!(cycles.get() > 0);
    }

    #[test]
    fn token_parallelism_never_changes_results(p in arb_problem()) {
        let lut = ExpLut::hardware_default();
        let (serial, _) = attention_tphs_functional(&p, 1, &lut).unwrap();
        for parallelism in [2usize, 3, 16] {
            let (parallel, _) = attention_tphs_functional(&p, parallelism, &lut).unwrap();
            prop_assert_eq!(&parallel, &serial, "P={}", parallelism);
        }
    }

    #[test]
    fn scales_affect_magnitude_not_equivalence(
        p in arb_problem(),
        q_scale in 0.01f32..0.1,
        out_scale in 0.01f32..0.1,
    ) {
        let mut p = p;
        p.scales.q = q_scale;
        p.scales.out = out_scale;
        let lut = ExpLut::hardware_default();
        let reference = attention_reference(&p, &lut).unwrap();
        let (tphs, _) = attention_tphs_functional(&p, 4, &lut).unwrap();
        prop_assert_eq!(tphs, reference);
    }
}

#[test]
fn lut_and_exact_softmax_agree_closely_on_attention_outputs() {
    // The LUT datapath is an approximation of exp(); outputs should differ
    // from the exact-softmax run by at most a couple of quantization steps.
    let lut = ExpLut::hardware_default();
    let mk = |softmax| AttentionProblem {
        x: Matrix::from_vec(4, 16, (0..64).map(|i| (i % 23) as i8 - 11).collect()).unwrap(),
        wq: Matrix::from_vec(16, 16, (0..256).map(|i| (i % 17) as i8 - 8).collect()).unwrap(),
        k_cache: Matrix::from_vec(6, 16, (0..96).map(|i| (i % 19) as i8 - 9).collect()).unwrap(),
        v_cache: Matrix::from_vec(6, 16, (0..96).map(|i| (i % 13) as i8 - 6).collect()).unwrap(),
        heads: 2,
        scales: AttentionScales::default(),
        softmax,
    };
    let exact = attention_reference(&mk(SoftmaxKind::Exact), &lut).unwrap();
    let approx = attention_reference(&mk(SoftmaxKind::Lut), &lut).unwrap();
    for (a, b) in exact.as_slice().iter().zip(approx.as_slice()) {
        assert!((i16::from(*a) - i16::from(*b)).abs() <= 3, "{a} vs {b}");
    }
}
