//! Auto-deployment: let the framework choose the dataflow for the target
//! device (§6.5's takeaway), then serve a streaming generation session.
//!
//! The paper's design-space study (Fig. 12a) shows the right attention
//! dataflow flips between GEMM and TPHS with the device's memory bandwidth.
//! `auto_engine` runs that analysis at deployment time; `InferenceSession`
//! then streams tokens and reports what a serving stack would observe.
//!
//! ```text
//! cargo run --release --example auto_deploy
//! ```

use meadow::core::planner::auto_engine;
use meadow::core::report::Table;
use meadow::core::session::InferenceSession;
use meadow::dataflow::AttentionDataflow;
use meadow::sim::ChipConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = meadow::models::presets::opt_125m();
    println!("Auto-deploying {} across edge device profiles\n", model.name);
    let mut table = Table::new([
        "device profile",
        "bandwidth_gbps",
        "chosen dataflow",
        "ttft_ms",
        "decode_tok_per_s",
        "kv_cache_end_kb",
    ]);
    for (profile, bw) in [
        ("battery saver (shared LPDDR)", 1.0),
        ("mainstream edge board", 6.0),
        ("ZCU102 nominal", 12.0),
        ("HBM-class devkit", 51.0),
    ] {
        let engine = auto_engine(&model, ChipConfig::zcu102(), bw, 512)?;
        let dataflow = match engine.config().plan.attention {
            AttentionDataflow::Gemm => "GEMM",
            AttentionDataflow::Tphs => "TPHS",
        };
        let mut session = InferenceSession::start(&engine, 512)?;
        session.generate(32)?;
        let trace = session.finish();
        table.row([
            profile.to_string(),
            format!("{bw}"),
            dataflow.to_string(),
            format!("{:.1}", trace.ttft_ms),
            format!("{:.2}", trace.decode_tokens_per_sec()),
            format!("{}", trace.final_kv_bytes / 1024),
        ]);
    }
    print!("{table}");
    println!("\nThe planner flips from TPHS to GEMM exactly where the roofline crossover");
    println!("of Fig. 12 predicts; packing stays on everywhere (it never hurts).");
    Ok(())
}
