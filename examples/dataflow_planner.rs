//! Dataflow planner: sweep the (bandwidth × PE) design space and choose
//! GEMM or TPHS for the attention chain at each point (Fig. 12a), with the
//! roofline view of the four corner configurations (Fig. 12b).
//!
//! ```text
//! cargo run --release --example dataflow_planner
//! ```

use meadow::core::planner::{dataflow_grid, paper_grid_axes};
use meadow::core::roofline::{attention_roofline_point, RooflineModel};
use meadow::dataflow::AttentionDataflow;
use meadow::packing::PackingConfig;
use meadow::sim::ChipConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = meadow::models::presets::opt_125m();
    let (bws, pes) = paper_grid_axes();
    println!("Dataflow planner for the Q+SM(QKT)xV chain of {} (512-token prefill)\n", model.name);

    let grid = dataflow_grid(&model, None, PackingConfig::default(), &bws, &pes, 512)?;
    // Render the Fig. 12a-style matrix: rows = bandwidth, cols = PE count.
    print!("{:>10} |", "BW \\ PEs");
    for pe in &pes {
        print!(" {pe:>14}");
    }
    println!();
    println!("{}", "-".repeat(12 + 15 * pes.len()));
    for &bw in &bws {
        print!("{bw:>7} Gbps|");
        for &pe in &pes {
            let e = grid
                .iter()
                .find(|e| e.bandwidth_gbps == bw && e.total_pes == pe)
                .expect("grid covers all points");
            let tag = match e.best {
                AttentionDataflow::Gemm => "GEMM",
                AttentionDataflow::Tphs => "TPHS",
            };
            print!(" {:>6.1}ms {tag:<5}", e.best_ms());
        }
        println!();
    }

    println!("\nRoofline view of the corner configurations (Fig. 12b):");
    for (bw, pe) in [(1.0, 14), (1.0, 96), (51.0, 14), (51.0, 96)] {
        let chip = ChipConfig::zcu102_with_total_pes(pe);
        let roof = RooflineModel::new(&chip, bw);
        println!(
            "  (BW {bw:>4} Gbps, {pe:>2} PEs): peak {:>6.1} GMAC/s, knee at {:>6.1} MACs/B",
            roof.peak_gmacs,
            roof.knee()
        );
        for df in [AttentionDataflow::Gemm, AttentionDataflow::Tphs] {
            let p = attention_roofline_point(&model, &chip, bw, df, 512)?;
            println!(
                "      {:<4}  intensity {:>6.1} MACs/B  achieved {:>6.1} GMAC/s (roof {:>6.1})",
                p.name,
                p.operational_intensity,
                p.achieved_gmacs,
                roof.roof_at(p.operational_intensity)
            );
        }
    }
    println!("\nReading: TPHS's high operational intensity keeps it fast when bandwidth is");
    println!("scarce; once the channel is wide (51 Gbps), GEMM's full-array parallelism wins —");
    println!("the same crossover as Fig. 12a of the paper.");
    Ok(())
}
