//! Weight-packing explorer: walk one weight matrix through every stage of
//! §5 — chunk decomposition, naive packing, packet-specific precision and
//! frequency-aware re-indexing — and inspect the result, including the
//! before/after chunk-ID histograms of Figs. 10b/10c.
//!
//! ```text
//! cargo run --release --example packing_explorer
//! ```

use meadow::models::synthetic::{generate_matrix, matrix_seed, profile_for};
use meadow::models::MatrixKind;
use meadow::packing::chunk::{decompose, reduction_ratio};
use meadow::packing::reindex::frequency_reindex;
use meadow::packing::stats::{IdHistogram, PackingSummary};
use meadow::packing::{ChunkConfig, PackedWeights, PackingConfig, PackingLevel};

fn ascii_bar(count: u64, max: u64, width: usize) -> String {
    let filled = (count as f64 / max.max(1) as f64 * width as f64).round() as usize;
    "#".repeat(filled.min(width))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = meadow::models::presets::opt_125m();
    let kind = MatrixKind::MlpUp;
    let (rows, cols) = model.matrix_dims(kind);
    // Use a row slice of the paper's anchor matrix to keep the demo fast.
    let rows = rows.min(512);
    let profile = profile_for(&model, kind, 0);
    let seed = matrix_seed(&model, kind, 0);
    let w = generate_matrix(rows, cols, profile, 2, seed)?;
    println!(
        "Matrix: {} decoder-1 MLP1 slice ({rows}x{cols}, {} KB raw INT8)\n",
        model.name,
        rows * cols / 1024
    );

    // Stage 1: chunk decomposition.
    let (unique, encoded) = decompose(&w, ChunkConfig::default())?;
    println!("Stage 1 — indexing:");
    println!("  chunks: {} total, {} unique", encoded.len(), unique.len());
    println!("  reduction ratio: {:.0}", reduction_ratio(&unique, &encoded));

    // Stages 2-4: the three packing levels.
    println!("\nStages 2-4 — packing levels:");
    for level in PackingLevel::all() {
        let packed = PackedWeights::pack(&w, &PackingConfig::default(), level)?;
        let s = PackingSummary::of(&packed);
        println!(
            "  {:<16} {:>7} B -> {:>7} B  ({:.2}x, {:.1} stream bits/id)",
            format!("{level:?}:"),
            s.raw_bytes,
            s.packed_bytes,
            s.compression_ratio,
            s.stream_bits_per_id
        );
        // Round-trip check: packing is lossless by construction.
        assert_eq!(packed.unpack()?, w, "pack/unpack must be bit-exact");
    }
    println!("  (every level verified bit-exact against the original)");

    // Histograms before/after re-indexing.
    let bins = 12;
    let before = IdHistogram::new(&encoded, unique.len(), bins);
    let re = frequency_reindex(&unique, &encoded)?;
    let after = IdHistogram::new(&re.encoded, re.unique.len(), bins);
    let max = before.counts.iter().chain(&after.counts).copied().max().unwrap_or(1);
    println!("\nChunk-ID histogram (Figs. 10b/10c): before -> after frequency-aware re-indexing");
    for i in 0..bins {
        println!(
            "  ids {:>5}+  {:<24} | {:<24}",
            before.bin_edges[i],
            ascii_bar(before.counts[i], max, 24),
            ascii_bar(after.counts[i], max, 24),
        );
    }
    println!(
        "\nHead-bin mass: {:.0}% -> {:.0}% — low IDs dominate after re-indexing, so",
        before.head_mass(1) * 100.0,
        after.head_mass(1) * 100.0
    );
    println!("packets can use low encoding precisions far more often.");
    Ok(())
}
