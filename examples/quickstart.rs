//! Quickstart: measure MEADOW against the GEMM baseline on OPT-125M.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use meadow::core::baselines::Baseline;
use meadow::core::report::{fmt_ms, fmt_speedup, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = meadow::models::presets::opt_125m();
    let bandwidth_gbps = 12.0;
    println!(
        "MEADOW quickstart: {} on the ZCU102 tile at {bandwidth_gbps} Gbps off-chip bandwidth\n",
        model.name
    );

    let gemm = Baseline::Gemm.engine(model.clone(), bandwidth_gbps)?;
    let meadow = Baseline::Meadow.engine(model, bandwidth_gbps)?;

    let mut table = Table::new(["metric", "GEMM baseline", "MEADOW", "speedup"]);
    let g_ttft = gemm.prefill_latency(512)?.total_ms();
    let m_ttft = meadow.prefill_latency(512)?.total_ms();
    table.row([
        "TTFT, 512-token prompt".to_string(),
        format!("{} ms", fmt_ms(g_ttft)),
        format!("{} ms", fmt_ms(m_ttft)),
        fmt_speedup(g_ttft / m_ttft),
    ]);
    let g_tbt = gemm.decode_latency(512, 64)?.total_ms();
    let m_tbt = meadow.decode_latency(512, 64)?.total_ms();
    table.row([
        "TBT, 64th generated token".to_string(),
        format!("{} ms", fmt_ms(g_tbt)),
        format!("{} ms", fmt_ms(m_tbt)),
        fmt_speedup(g_tbt / m_tbt),
    ]);
    let g_e2e = gemm.end_to_end_latency(512, 64)?.total_ms;
    let m_e2e = meadow.end_to_end_latency(512, 64)?.total_ms;
    table.row([
        "end-to-end, 512 prompt + 64 generated".to_string(),
        format!("{} ms", fmt_ms(g_e2e)),
        format!("{} ms", fmt_ms(m_e2e)),
        fmt_speedup(g_e2e / m_e2e),
    ]);
    print!("{table}");

    // Where does the win come from? Compare the traffic ledgers.
    let g = gemm.prefill_latency(512)?;
    let m = meadow.prefill_latency(512)?;
    println!("\nDRAM traffic per prefill (whole model):");
    println!(
        "  GEMM:   {:>7.1} MB fetched, {:>6.1} MB stored",
        g.ledger.fetch_bytes() as f64 / 1e6,
        g.ledger.store_bytes() as f64 / 1e6
    );
    println!(
        "  MEADOW: {:>7.1} MB fetched, {:>6.1} MB stored",
        m.ledger.fetch_bytes() as f64 / 1e6,
        m.ledger.store_bytes() as f64 / 1e6
    );
    let power = meadow.power_report(&m, 512, 512);
    println!(
        "\nMEADOW average power during prefill: {:.1} W (sub-10 W edge envelope)",
        power.average_watts
    );
    Ok(())
}
