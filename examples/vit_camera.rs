//! Vision pipeline scenario: DeiT inference on a camera stream (§6.6).
//!
//! An autonomous-driving or smart-camera stack runs a ViT per frame; frame
//! rate is bounded by inference latency. This example sweeps DRAM bandwidth
//! for DeiT-S and DeiT-B and reports achievable frames/second under GEMM
//! and MEADOW execution.
//!
//! ```text
//! cargo run --release --example vit_camera
//! ```

use meadow::core::report::{fmt_speedup, Table};
use meadow::core::vit::vit_speedup;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("ViT camera pipeline: DeiT on the ZCU102 tile (197 tokens per frame)\n");
    let mut table = Table::new([
        "model",
        "bandwidth_gbps",
        "gemm_ms_per_frame",
        "meadow_ms_per_frame",
        "gemm_fps",
        "meadow_fps",
        "speedup",
    ]);
    for model in [meadow::models::presets::deit_s(), meadow::models::presets::deit_b()] {
        for bw in [1.0, 3.0, 6.0, 12.0] {
            let c = vit_speedup(&model, bw)?;
            table.row([
                c.model.clone(),
                format!("{bw}"),
                format!("{:.1}", c.gemm_ms),
                format!("{:.1}", c.meadow_ms),
                format!("{:.1}", 1e3 / c.gemm_ms),
                format!("{:.1}", 1e3 / c.meadow_ms),
                fmt_speedup(c.speedup),
            ]);
        }
    }
    print!("{table}");
    println!("\nViTs process all tokens at once — structurally an LLM prefill — so the");
    println!("TPHS dataflow and weight packing transfer directly (paper Fig. 13: 1.5-1.6x).");
    Ok(())
}
