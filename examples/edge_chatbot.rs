//! Edge chatbot scenario: a mobile assistant answering a prompt on a
//! bandwidth-constrained device (the paper's motivating workload).
//!
//! Simulates a chat turn — a 512-token prompt followed by 128 generated
//! tokens — across DRAM bandwidths for every system of the paper's
//! comparison (GEMM, CTA, FlightLLM, MEADOW) and reports per-turn latency
//! and tokens/second.
//!
//! ```text
//! cargo run --release --example edge_chatbot
//! ```

use meadow::core::baselines::Baseline;
use meadow::core::report::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = meadow::models::presets::opt_125m();
    let prompt = 512;
    let generated = 128;
    println!(
        "Edge chatbot: {} | {prompt}-token prompt, {generated} generated tokens\n",
        model.name
    );
    let mut table = Table::new([
        "bandwidth_gbps",
        "system",
        "ttft_ms",
        "turn_latency_ms",
        "decode_tokens_per_s",
    ]);
    for bw in [1.0, 6.0, 12.0] {
        for baseline in Baseline::comparison_set() {
            let engine = baseline.engine(model.clone(), bw)?;
            let e2e = engine.end_to_end_latency(prompt, generated)?;
            let tps = generated as f64 / (e2e.decode_ms / 1e3);
            table.row([
                format!("{bw}"),
                baseline.name().to_string(),
                format!("{:.1}", e2e.ttft_ms),
                format!("{:.1}", e2e.total_ms),
                format!("{tps:.2}"),
            ]);
        }
    }
    print!("{table}");
    println!("\nMEADOW keeps the chat turn fastest at every bandwidth; the gap widens as the");
    println!("channel narrows, which is exactly the low-power edge regime the paper targets.");
    Ok(())
}
