//! Derive macros for the vendored mini-serde.
//!
//! crates.io is unreachable in this build environment, so instead of `syn` +
//! `quote` this crate walks the raw [`proc_macro::TokenStream`] of the item
//! and emits impl blocks as formatted strings. It supports the shapes this
//! workspace actually derives on: unit/tuple/named structs, enums with
//! unit/tuple/named variants, and simple type generics (`struct Matrix<T>`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum TypeKind {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<FieldDef>),
    Enum(Vec<Variant>),
}

/// A named field plus the field attributes this derive honors:
/// `#[serde(default)]` (a missing field deserializes to `Default`) and
/// `#[serde(skip_serializing_if = "path")]` (the field is omitted from the
/// serialized map when `path(&self.field)` is true).
struct FieldDef {
    name: String,
    default: bool,
    skip_if: Option<String>,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<FieldDef>),
}

struct TypeDef {
    name: String,
    generics: Vec<String>,
    kind: TypeKind,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_type(input);
    gen_serialize(&def).parse().expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_type(input);
    gen_deserialize(&def).parse().expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_type(input: TokenStream) -> TypeDef {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let item_kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;

    let generics = parse_generics(&tokens, &mut i);

    // Skip a `where` clause if present (stop at the body or trailing `;`).
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Group(g)
                if g.delimiter() == Delimiter::Brace || g.delimiter() == Delimiter::Parenthesis =>
            {
                break
            }
            TokenTree::Punct(p) if p.as_char() == ';' => break,
            _ => i += 1,
        }
    }

    let kind = if item_kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                TypeKind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                TypeKind::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => TypeKind::UnitStruct,
        }
    } else if item_kind == "enum" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                TypeKind::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, found {other:?}"),
        }
    } else {
        panic!("#[derive(Serialize/Deserialize)] supports only structs and enums");
    };

    TypeDef { name, generics, kind }
}

/// Advances past `#[...]` attributes (incl. doc comments) and visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) / pub(super)
                }
            }
            _ => return,
        }
    }
}

/// Parses `<...>` after the type name, returning type-parameter idents
/// (lifetimes and const params are skipped).
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    if !matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return params;
    }
    *i += 1;
    let mut depth = 1usize;
    let mut at_param_start = true;
    let mut in_lifetime = false;
    let mut in_const = false;
    while *i < tokens.len() && depth > 0 {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                at_param_start = true;
                in_lifetime = false;
                in_const = false;
            }
            TokenTree::Punct(p) if p.as_char() == '\'' && at_param_start => {
                in_lifetime = true;
            }
            TokenTree::Ident(id) if at_param_start => {
                let s = id.to_string();
                if in_lifetime {
                    in_lifetime = false;
                } else if s == "const" {
                    in_const = true;
                } else {
                    if !in_const {
                        params.push(s);
                    }
                    in_const = false;
                }
                at_param_start = false;
            }
            _ => {}
        }
        *i += 1;
    }
    params
}

/// Whether a `#[...]` attribute body is `serde(...)` containing a
/// `default` ident (i.e. `#[serde(default)]`, possibly among others).
fn attr_is_serde_default(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            g.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "default"))
        }
        _ => false,
    }
}

/// Extracts the `skip_serializing_if = "path"` value from a `serde(...)`
/// attribute body, if present.
fn attr_serde_skip_if(stream: TokenStream) -> Option<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            for w in 0..inner.len() {
                if let TokenTree::Ident(id) = &inner[w] {
                    if id.to_string() == "skip_serializing_if" {
                        if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(path))) =
                            (inner.get(w + 1), inner.get(w + 2))
                        {
                            if eq.as_char() == '=' {
                                let raw = path.to_string();
                                return Some(raw.trim_matches('"').to_owned());
                            }
                        }
                    }
                }
            }
            None
        }
        _ => None,
    }
}

/// Parses `name: Type, ...` field lists, returning the field names plus
/// whether each carries `#[serde(default)]` and/or
/// `#[serde(skip_serializing_if = "...")]`.
fn parse_named_fields(stream: TokenStream) -> Vec<FieldDef> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Walk the attributes ourselves (instead of skip_attrs_and_vis) so
        // `#[serde(...)]` is seen before it is skipped.
        let mut default = false;
        let mut skip_if = None;
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    i += 1; // '#'
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Bracket {
                            default |= attr_is_serde_default(g.stream());
                            if skip_if.is_none() {
                                skip_if = attr_serde_skip_if(g.stream());
                            }
                            i += 1;
                        }
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        i += 1; // pub(crate) / pub(super)
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else { break };
        fields.push(FieldDef { name: id.to_string(), default, skip_if });
        i += 1;
        // Skip `: Type` up to the next top-level comma; commas nested inside
        // `<...>`, `(...)`, etc. are part of the type.
        let mut angle_depth = 0usize;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1)
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Counts the fields of a tuple struct/variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0usize;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                trailing_comma = true;
            }
            _ => trailing_comma = false,
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else { break };
        let name = id.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the separating comma.
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn impl_header(def: &TypeDef, trait_name: &str) -> String {
    if def.generics.is_empty() {
        format!("impl ::serde::{trait_name} for {} ", def.name)
    } else {
        let bounded: Vec<String> =
            def.generics.iter().map(|g| format!("{g}: ::serde::{trait_name}")).collect();
        let args = def.generics.join(", ");
        format!("impl<{}> ::serde::{trait_name} for {}<{args}> ", bounded.join(", "), def.name)
    }
}

fn gen_serialize(def: &TypeDef) -> String {
    let body = match &def.kind {
        TypeKind::UnitStruct => "::serde::Value::Null".to_owned(),
        TypeKind::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        TypeKind::NamedStruct(fields) => {
            if fields.iter().any(|f| f.skip_if.is_some()) {
                let mut stmts = vec![format!(
                    "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::with_capacity({});",
                    fields.len()
                )];
                for f in fields {
                    let name = &f.name;
                    let push = format!(
                        "__m.push((::std::string::String::from({name:?}), ::serde::Serialize::to_value(&self.{name})));"
                    );
                    match &f.skip_if {
                        Some(path) => stmts.push(format!("if !{path}(&self.{name}) {{ {push} }}")),
                        None => stmts.push(push),
                    }
                }
                format!("{{ {} ::serde::Value::Map(__m) }}", stmts.join(" "))
            } else {
                let items: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        let f = &f.name;
                        format!(
                            "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                        )
                    })
                    .collect();
                format!("::serde::Value::Map(vec![{}])", items.join(", "))
            }
        }
        TypeKind::Enum(variants) => {
            let ty = &def.name;
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{ty}::{vn} => ::serde::Value::Str(::std::string::String::from({vn:?}))"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{ty}::{vn}({}) => ::serde::Value::Map(vec![(::std::string::String::from({vn:?}), ::serde::Value::Seq(vec![{}]))])",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds =
                                fields.iter().map(|f| f.name.as_str()).collect::<Vec<_>>().join(", ");
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    let f = &f.name;
                                    format!(
                                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{ty}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(::std::string::String::from({vn:?}), ::serde::Value::Map(vec![{}]))])",
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "{header}{{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
        header = impl_header(def, "Serialize")
    )
}

/// One `field: de_field(..)?` initializer, honoring `#[serde(default)]`.
fn de_named_field(field: &FieldDef, source: &str) -> String {
    let f = &field.name;
    if field.default {
        format!("{f}: ::serde::__private::de_field_or_default({source}, {f:?})?")
    } else {
        format!("{f}: ::serde::__private::de_field({source}, {f:?})?")
    }
}

fn gen_deserialize(def: &TypeDef) -> String {
    let ty = &def.name;
    let body = match &def.kind {
        TypeKind::UnitStruct => format!("::std::result::Result::Ok({ty})"),
        TypeKind::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::__private::de_index(__v, {i})?")).collect();
            format!("::std::result::Result::Ok({ty}({}))", items.join(", "))
        }
        TypeKind::NamedStruct(fields) => {
            let items: Vec<String> = fields.iter().map(|f| de_named_field(f, "__v")).collect();
            format!("::std::result::Result::Ok({ty} {{ {} }})", items.join(", "))
        }
        TypeKind::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut payload_arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push(format!(
                            "{vn:?} => return ::std::result::Result::Ok({ty}::{vn})"
                        ));
                        // A unit variant may also appear as a map key with a
                        // null payload; accept that spelling too.
                        payload_arms.push(format!(
                            "if let ::std::option::Option::Some(_) = __v.get({vn:?}) {{ return ::std::result::Result::Ok({ty}::{vn}); }}"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::__private::de_index(__p, {i})?"))
                            .collect();
                        payload_arms.push(format!(
                            "if let ::std::option::Option::Some(__p) = __v.get({vn:?}) {{ return ::std::result::Result::Ok({ty}::{vn}({})); }}",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let items: Vec<String> =
                            fields.iter().map(|f| de_named_field(f, "__p")).collect();
                        payload_arms.push(format!(
                            "if let ::std::option::Option::Some(__p) = __v.get({vn:?}) {{ return ::std::result::Result::Ok({ty}::{vn} {{ {} }}); }}",
                            items.join(", ")
                        ));
                    }
                }
            }
            let unit_match = if unit_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let ::serde::Value::Str(__s) = __v {{ match __s.as_str() {{ {}, _ => {{}} }} }}",
                    unit_arms.join(", ")
                )
            };
            format!(
                "{unit_match} {payloads} ::std::result::Result::Err(::serde::Error::msg(format!(\"no variant of `{ty}` matches {{__v:?}}\")))",
                payloads = payload_arms.join(" ")
            )
        }
    };
    format!(
        "{header}{{ fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}",
        header = impl_header(def, "Deserialize")
    )
}
