//! Vendored mini-proptest.
//!
//! crates.io is unreachable in this build environment, so this crate
//! implements the slice of the proptest API the workspace's property tests
//! use: the `proptest!` test-definition macro (argument position accepts
//! irrefutable patterns, e.g. tuple destructuring of a `prop_flat_map`
//! strategy), `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`, `Just`,
//! `any::<T>()`, integer/float range strategies, tuple strategies,
//! `prop_map`/`prop_flat_map`, and `collection::vec`.
//!
//! Sampling is deterministic (SplitMix64 keyed on a per-test seed and the
//! case index), so failures reproduce across runs. There is no shrinking:
//! a failing case reports its case index and message only.

pub mod test_runner {
    use std::fmt;

    /// Deterministic per-case random source.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_case(case: u64) -> Self {
            // Distinct odd multiplier spreads small case indices across the
            // whole state space.
            TestRng { state: case.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0xDEAD_BEEF_CAFE_F00D }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform sample in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            self.next_u64() % bound
        }

        /// Uniform sample in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Runner configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A test-case failure raised by `prop_assert!` and friends.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }

        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError(format!("rejected: {}", message.into()))
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// `Result` alias used by generated test-case closures.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// `prop_flat_map` adapter.
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice between homogeneous strategies (`prop_oneof!`).
    pub struct OneOf<S> {
        options: Vec<S>,
    }

    impl<S: Strategy> OneOf<S> {
        pub fn new(options: Vec<S>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            OneOf { options }
        }
    }

    impl<S: Strategy> Strategy for OneOf<S> {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (lo as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + rng.unit_f64() as $t * (hi - lo)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Full-domain strategy for `T` (`any::<T>()`).
    pub struct Any<T>(PhantomData<T>);

    /// Returns the whole-domain strategy for `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any(PhantomData)
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    any_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for Any<bool> {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<f32> {
        type Value = f32;

        fn sample(&self, rng: &mut TestRng) -> f32 {
            (rng.unit_f64() * 2.0 - 1.0) as f32 * 1e6
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            (rng.unit_f64() * 2.0 - 1.0) * 1e12
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Length specifications accepted by [`vec`]: a fixed size or a range.
    pub trait SizeSpec {
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeSpec for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeSpec for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeSpec for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty vec size range");
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Mirrors `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy, L: SizeSpec>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeSpec> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are sampled from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @config($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @config($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@config($config:expr) $(
        $(#[$meta:meta])+
        fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            for __case in 0..__config.cases as u64 {
                let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                $(
                    let $arg =
                        $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                )+
                let __outcome: $crate::test_runner::TestCaseResult = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __e
                    );
                }
            }
        }
    )*};
}

/// `assert!` that fails the proptest case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that fails the proptest case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    format!($($fmt)+),
                    __l,
                    __r
                ),
            ));
        }
    }};
}

/// `assert_ne!` counterpart of [`prop_assert_eq!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Uniform choice among homogeneous strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($strat),+])
    };
}
