//! Vendored mini-serde.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, self-contained replacement for the small slice of
//! serde it actually uses: `#[derive(Serialize, Deserialize)]` on plain
//! structs/enums plus a JSON round-trip through the sibling `serde_json`
//! stub. The data model is a single [`Value`] tree rather than serde's
//! visitor architecture; the derive macro (see `vendor/serde_derive`)
//! generates `to_value`/`from_value` impls directly.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A dynamically-typed serialization tree (a superset of JSON).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a `Map` value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Indexes into a `Seq` value.
    pub fn index(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Seq(items) => items.get(i),
            _ => None,
        }
    }

    /// The value as an `f64` (accepting any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(n) => Some(n),
            Value::I64(n) => Some(n as f64),
            Value::U64(n) => Some(n as f64),
            _ => None,
        }
    }

    /// The value as a `u64` (non-negative integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// The value as an `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(n) => Some(n),
            Value::U64(n) if n <= i64::MAX as u64 => Some(n as i64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a sequence slice.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                #[allow(unused_comparisons)]
                if *self < 0 {
                    Value::I64(*self as i64)
                } else {
                    Value::U64(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::F64(n) => Ok(*n as $t),
                    other => Err(Error::msg(format!(
                        "expected integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    other => Err(Error::msg(format!("expected float, found {other:?}"))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::msg(format!("expected char, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

// `&'static str` fields (role names and the like) can only be rebuilt by
// leaking the owned string. Deserialization of such types is rare and the
// leak is a few bytes per call, which is acceptable for a test/debug path.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(Error::msg(format!("expected string, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected sequence, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_value(item)?;
                }
                Ok(out)
            }
            other => Err(Error::msg(format!("expected [T; {N}], found {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) => Ok(($(
                        $name::from_value(items.get($idx).ok_or_else(|| {
                            Error::msg("tuple too short")
                        })?)?,
                    )+)),
                    other => Err(Error::msg(format!("expected tuple, found {other:?}"))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

// Maps serialize as sequences of `[key, value]` pairs so non-string keys
// (e.g. `BTreeMap<(usize, MatrixKind), _>`) round-trip losslessly.
impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()])).collect())
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        de_map_entries(v)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()])).collect())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        de_map_entries(v)
    }
}

fn de_map_entries<K: Deserialize, V: Deserialize, M: FromIterator<(K, V)>>(
    v: &Value,
) -> Result<M, Error> {
    match v {
        Value::Seq(items) => items
            .iter()
            .map(|pair| match pair {
                Value::Seq(kv) if kv.len() == 2 => {
                    Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
                }
                other => Err(Error::msg(format!("expected [key, value] pair, found {other:?}"))),
            })
            .collect(),
        other => Err(Error::msg(format!("expected map entries, found {other:?}"))),
    }
}

/// Support code used by the generated derive impls; not public API.
#[doc(hidden)]
pub mod __private {
    use super::{Deserialize, Error, Value};

    pub fn de_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
        match v.get(name) {
            Some(field) => T::from_value(field),
            None => Err(Error::msg(format!("missing field `{name}`"))),
        }
    }

    /// `#[serde(default)]` support: a missing field deserializes to the
    /// type's `Default` instead of erroring, so new fields stay
    /// backward-compatible with previously serialized data.
    pub fn de_field_or_default<T: Deserialize + Default>(
        v: &Value,
        name: &str,
    ) -> Result<T, Error> {
        match v.get(name) {
            Some(field) => T::from_value(field),
            None => Ok(T::default()),
        }
    }

    pub fn de_index<T: Deserialize>(v: &Value, i: usize) -> Result<T, Error> {
        match v.index(i) {
            Some(field) => T::from_value(field),
            None => Err(Error::msg(format!("missing tuple field {i}"))),
        }
    }

    pub fn variant_payload<'v>(v: &'v Value, name: &str) -> Result<&'v Value, Error> {
        v.get(name).ok_or_else(|| Error::msg(format!("missing variant payload for `{name}`")))
    }
}
