//! Vendored mini-criterion.
//!
//! crates.io is unreachable in this build environment, so this crate keeps
//! the workspace's Criterion bench harnesses compiling and runnable. It
//! implements the API subset the benches use — `Criterion::default()` with
//! builder knobs, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!`/`criterion_main!`
//! macros — measuring median wall-clock time per iteration with plain
//! `Instant`. No statistics, plots, or baseline comparisons.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-group throughput annotation (reported alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// A function-plus-parameter bench identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to bench closures.
pub struct Bencher {
    samples: usize,
    measurement_time: Duration,
    /// Median ns/iter, filled in by `iter`.
    result_ns: f64,
}

impl Bencher {
    /// Runs the routine repeatedly and records the median time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up call so lazy initialization doesn't skew the
        // first sample.
        black_box(routine());
        let deadline = Instant::now() + self.measurement_time;
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed().as_nanos() as f64);
            if Instant::now() > deadline {
                break;
            }
        }
        times.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = times[times.len() / 2];
    }
}

/// Top-level harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20, measurement_time: Duration::from_millis(500) }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    pub fn bench_function<F>(&mut self, name: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = name.to_string();
        self.run_one(&label, None, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        label: &str,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            measurement_time: self.measurement_time,
            result_ns: f64::NAN,
        };
        f(&mut bencher);
        let ns = bencher.result_ns;
        match throughput {
            Some(Throughput::Elements(n)) if ns > 0.0 => {
                let rate = n as f64 / (ns * 1e-9);
                println!("bench: {label:<50} {ns:>12.0} ns/iter ({rate:.3e} elem/s)");
            }
            Some(Throughput::Bytes(n) | Throughput::BytesDecimal(n)) if ns > 0.0 => {
                let rate = n as f64 / (ns * 1e-9) / (1024.0 * 1024.0);
                println!("bench: {label:<50} {ns:>12.0} ns/iter ({rate:.1} MiB/s)");
            }
            _ => println!("bench: {label:<50} {ns:>12.0} ns/iter"),
        }
    }
}

/// A named collection of related benches sharing throughput annotations.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let throughput = self.throughput;
        self.criterion.run_one(&label, throughput, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let throughput = self.throughput;
        self.criterion.run_one(&label, throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Declares a bench group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
