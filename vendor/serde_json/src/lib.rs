//! Vendored mini serde_json.
//!
//! Serializes the mini-serde [`Value`] tree to JSON text and parses it back.
//! Covers `to_string`, `to_string_pretty`, `from_str`, and a `Value`
//! re-export — the subset this workspace uses.

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes a value to indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: s.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", parser.pos)));
    }
    T::from_value(&value)
}

/// Serializes a value to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::msg(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => write_f64(*n, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(v: &Value, out: &mut String, indent: usize) {
    let pad = |out: &mut String, n: usize| {
        for _ in 0..n {
            out.push_str("  ");
        }
    };
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(out, indent + 1);
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            pad(out, indent);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(out, indent + 1);
                write_string(k, out);
                out.push_str(": ");
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            pad(out, indent);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

/// JSON has no NaN/Infinity literals; finite floats print with Rust's
/// shortest round-trip formatting, with a `.0` forced onto integral values
/// so they re-parse as floats.
fn write_f64(n: f64, out: &mut String) {
    if n.is_finite() {
        let s = n.to_string();
        out.push_str(&s);
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!("unexpected input {other:?} at byte {}", self.pos))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or_else(|| Error::msg("bad \\u escape"))?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).ok_or_else(|| Error::msg("bad \\u escape"))?);
                    }
                    other => return Err(Error::msg(format!("bad escape {other:?}"))),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode a UTF-8 multibyte sequence.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|e| Error::msg(format!("invalid UTF-8 in string: {e}")))?;
                    out.push_str(s);
                    self.pos = end;
                }
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error::msg(format!("bad number `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| Error::msg(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error::msg(format!("bad number `{text}`: {e}")))
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Seq(items)),
                other => {
                    return Err(Error::msg(format!("expected , or ] in array, got {other:?}")))
                }
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Map(entries)),
                other => {
                    return Err(Error::msg(format!("expected , or }} in object, got {other:?}")))
                }
            }
        }
    }
}
