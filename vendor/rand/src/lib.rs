//! Vendored mini-rand.
//!
//! crates.io is unreachable in this build environment, so this crate
//! provides the small slice of the rand 0.8 API the workspace uses:
//! `StdRng::seed_from_u64` and `Rng::gen_range` over integer and float
//! ranges. The generator is SplitMix64 — deterministic, seedable, and more
//! than good enough for synthesizing test data. It makes no statistical or
//! cryptographic claims beyond that.

/// Low-level entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from a `Range` or `RangeInclusive`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples from `T`'s standard distribution: the full domain for
    /// integers and bool, the unit interval `[0, 1)` for floats.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::from_rng(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types with a standard distribution (`rng.gen::<T>()`).
pub trait StandardSample {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl StandardSample for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardSample for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let a: Vec<i32> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..32).map(|_| rng.gen_range(-50..=50)).collect()
        };
        let b: Vec<i32> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..32).map(|_| rng.gen_range(-50..=50)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i8 = rng.gen_range(-50..=50);
            assert!((-50..=50).contains(&v));
            let f: f32 = rng.gen_range(-8.0..8.0);
            assert!((-8.0..8.0).contains(&f));
            let u: usize = rng.gen_range(1..100);
            assert!((1..100).contains(&u));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
