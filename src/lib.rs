//! MEADOW — reproduction of *MEADOW: Memory-efficient Dataflow and Data
//! Packing for Low Power Edge LLMs* (MLSys 2025).
//!
//! This facade crate re-exports the workspace's public API so examples and
//! downstream users can depend on a single crate:
//!
//! * [`tensor`] — quantized-tensor numerics (INT8 GEMM, softmax, LayerNorm).
//! * [`sim`] — the edge-accelerator hardware substrate (DRAM/BRAM/PEs/NoC).
//! * [`packing`] — lossless weight packing (unique-chunk indexing,
//!   packet-specific precision, frequency-aware re-indexing, WILU/MAU).
//! * [`models`] — OPT / DeiT model configs and synthetic calibrated weights.
//! * [`dataflow`] — GEMM-mode and TPHS executors with latency breakdowns.
//! * [`core`] — the `MeadowEngine`, dataflow planner, roofline model, the
//!   CTA / FlightLLM prior-work baselines, and the serving stack: the
//!   multi-session simulator (continuous batching, paged KV-cache
//!   budgets, SLO-aware admission, speculative decoding) and the cluster
//!   API (`core::cluster`: session-pool sharding across simulated chips
//!   with pluggable placement, NoC-charged migration, and prefill/decode
//!   disaggregation with a NoC-charged KV handoff).
//!
//! # Quickstart
//!
//! ```
//! use meadow::core::{EngineConfig, MeadowEngine};
//! use meadow::models::presets;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let engine = MeadowEngine::new(EngineConfig::zcu102(presets::opt_125m(), 12.0))?;
//! let prefill = engine.prefill_latency(512)?;
//! let decode = engine.decode_latency(512, 64)?;
//! println!("TTFT {:.2} ms, TBT {:.2} ms", prefill.total_ms(), decode.total_ms());
//! # Ok(())
//! # }
//! ```

pub use meadow_core as core;
pub use meadow_dataflow as dataflow;
pub use meadow_models as models;
pub use meadow_packing as packing;
pub use meadow_sim as sim;
pub use meadow_tensor as tensor;
